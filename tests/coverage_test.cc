// Tests for paths not covered by the module suites: catalog routing,
// Halt/fiber primitives, rail restoration, rig persistence accounting,
// resilver error paths, and client-API bounds.
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>

#include "db/catalog.h"
#include "db/txn_client.h"
#include "net/fabric.h"
#include "pm/client.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "workload/hot_stock.h"
#include "workload/rig.h"

namespace ods {
namespace {

using sim::Microseconds;
using sim::Milliseconds;
using sim::Seconds;
using sim::SimTime;
using sim::Task;

// ---------------------------------------------------------------- catalog

TEST(CatalogTest, RoutingIsStableAndCoversAllPartitions) {
  db::Catalog catalog(4, 4);
  for (int f = 0; f < 4; ++f) {
    for (int p = 0; p < 4; ++p) {
      catalog.SetRoute(f, p, db::PartitionRoute{db::Catalog::Dp2Name(f, p),
                                                db::Catalog::AdpName(p)});
    }
  }
  // Stability: the same key always routes to the same partition.
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(catalog.Route(1, key).dp2_service,
              catalog.Route(1, key).dp2_service);
  }
  // Coverage: sequential keys spread across every partition of a file.
  std::set<std::string> hit;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    hit.insert(catalog.Route(2, key).dp2_service);
  }
  EXPECT_EQ(hit.size(), 4u) << "hash must use all partitions";
  // Different files route independently (names differ).
  EXPECT_NE(catalog.Route(0, 5).dp2_service, catalog.Route(1, 5).dp2_service);
}

TEST(CatalogTest, CanonicalNames) {
  EXPECT_EQ(db::Catalog::Dp2Name(2, 3), "$DP-F2-P3");
  EXPECT_EQ(db::Catalog::AdpName(1), "$ADP1");
}

// ------------------------------------------------------------- sim extras

class LambdaProcess : public sim::Process {
 public:
  using Body = std::function<Task<void>(LambdaProcess&)>;
  LambdaProcess(sim::Simulation& sim, std::string name, Body body)
      : Process(sim, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

TEST(SimExtrasTest, HaltSuspendsUntilKill) {
  sim::Simulation sim;
  bool unwound = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  auto& p = sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    Sentinel s{&unwound};
    co_await self.Halt();
  });
  sim.RunUntil(SimTime{Seconds(100).ns});
  EXPECT_TRUE(p.alive()) << "Halt must not exit on its own";
  EXPECT_EQ(sim.Now(), SimTime{Seconds(100).ns});
  p.Kill();
  sim.RunUntil(SimTime{Seconds(101).ns});
  EXPECT_TRUE(unwound);
  EXPECT_TRUE(p.finished());
}

TEST(SimExtrasTest, HaltSchedulesNoEvents) {
  // A halted process must leave the event queue empty (unlike a sleep
  // loop, which would tick forever).
  sim::Simulation sim;
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    co_await self.Halt();
  });
  EXPECT_EQ(sim.Run(), 0u) << "no events should be pending";
}

TEST(SimExtrasTest, SpawnStoppedDoesNotRunUntilStart) {
  sim::Simulation sim;
  bool ran = false;
  auto& p = sim.SpawnStopped<LambdaProcess>(
      "s", [&](LambdaProcess&) -> Task<void> {
        ran = true;
        co_return;
      });
  sim.Run();
  EXPECT_FALSE(ran);
  p.Start();
  sim.Run();
  EXPECT_TRUE(ran);
}

// ---------------------------------------------------------------- fabric

TEST(FabricExtrasTest, RailRestorationResumesPreferredPath) {
  sim::Simulation sim;
  net::Fabric fabric(sim, net::FabricConfig{});
  EXPECT_EQ(fabric.FirstHealthyRail(), 0);
  fabric.SetRailDown(0, true);
  EXPECT_EQ(fabric.FirstHealthyRail(), 1);
  fabric.SetRailDown(1, true);
  EXPECT_EQ(fabric.FirstHealthyRail(), -1);
  fabric.SetRailDown(0, false);
  EXPECT_EQ(fabric.FirstHealthyRail(), 0);
  EXPECT_TRUE(fabric.RailUp(0));
  EXPECT_FALSE(fabric.RailUp(1));
}

TEST(FabricExtrasTest, TransferTimeScalesWithSize) {
  sim::Simulation sim;
  net::Fabric fabric(sim, net::FabricConfig{});
  const auto t1 = fabric.TransferTime(512);
  const auto t64 = fabric.TransferTime(64 * 1024);
  EXPECT_GT(t64.ns, t1.ns * 50);
  EXPECT_GT(fabric.TransferTime(0).ns, 0) << "even empty transfers packetize";
}

TEST(FabricExtrasTest, BytesAccountingTracksCompletedTransfers) {
  sim::Simulation sim(5);
  net::Fabric fabric(sim, net::FabricConfig{});
  std::vector<std::byte> mem(8192);
  net::Endpoint& dev = fabric.CreateEndpoint("dev");
  net::AttWindow w;
  w.nva_base = 0;
  w.length = mem.size();
  w.memory = mem.data();
  ASSERT_TRUE(dev.MapWindow(std::move(w)).ok());
  net::Endpoint& host = fabric.CreateEndpoint("host");
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    (void)co_await host.Write(self, dev.id(), 0,
                              std::vector<std::byte>(4096, std::byte{1}));
    (void)co_await host.Read(self, dev.id(), 0, 2048);
  });
  sim.Run();
  EXPECT_EQ(fabric.bytes_transferred(), 4096u + 2048u);
  EXPECT_GT(fabric.packets_sent(), 8u);  // 4096/512 + 2048/512 at least
}

// --------------------------------------------------------- rig accounting

TEST(RigAccountingTest, PmModeShiftsAuditBytesOffDisk) {
  auto run = [](bool pm) {
    sim::Simulation sim(7);
    workload::RigConfig cfg;
    cfg.num_files = 2;
    cfg.partitions_per_file = 2;
    cfg.num_adps = 2;
    if (pm) {
      cfg.log_medium = tp::LogMedium::kPm;
      cfg.pm_device = workload::PmDeviceKind::kNpmuPair;
    }
    workload::Rig rig(sim, cfg);
    sim.RunFor(Seconds(1));
    workload::HotStockConfig hs;
    hs.drivers = 1;
    hs.inserts_per_txn = 4;
    hs.records_per_driver = 100;
    (void)workload::RunHotStock(rig, hs);
    sim.RunFor(Seconds(2));  // drain background flushers
    return rig.Account();
  };
  const auto disk = run(false);
  const auto pm = run(true);
  const std::uint64_t user_bytes = 100 * 4096;
  EXPECT_GT(disk.disk_bytes_written, user_bytes * 3 / 2)
      << "disk mode writes data AND audit to disk";
  EXPECT_EQ(disk.pm_bytes_written, 0u);
  EXPECT_GT(pm.pm_bytes_written, user_bytes)
      << "PM mode carries the audit (mirrored)";
  EXPECT_LT(pm.disk_bytes_written, disk.disk_bytes_written);
  EXPECT_GT(disk.checkpoint_bytes, user_bytes)
      << "process pairs checkpoint every insert";
  EXPECT_GT(disk.audit_flushes, 0u);
}

// ------------------------------------------------------------- pm client

class AppProcess : public nsk::NskProcess {
 public:
  using Body = std::function<Task<void>(AppProcess&)>;
  AppProcess(nsk::Cluster& cluster, int cpu, std::string name, Body body)
      : NskProcess(cluster, cpu, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

TEST(PmClientExtrasTest, ResilverOnUnmirroredVolumeRejected) {
  // The PMP prototype is a single device: resilvering is meaningless.
  sim::Simulation sim(9);
  workload::RigConfig cfg;
  cfg.num_files = 1;
  cfg.partitions_per_file = 1;
  cfg.num_adps = 1;
  cfg.log_medium = tp::LogMedium::kPm;
  cfg.pm_device = workload::PmDeviceKind::kPmp;
  workload::Rig rig(sim, cfg);
  sim.RunFor(Seconds(1));
  Status st;
  bool done = false;
  sim.Adopt<AppProcess>(rig.cluster(), 2, "app",
                        [&](AppProcess& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto r = co_await client.Resilver();
    st = r.status();
    done = true;
  });
  sim.RunFor(Seconds(30));
  ASSERT_TRUE(done);
  EXPECT_EQ(st.code(), ErrorCode::kFailedPrecondition);
}

TEST(PmClientExtrasTest, WriteScatterRejectsOutOfBounds) {
  sim::Simulation sim(11);
  workload::RigConfig cfg;
  cfg.num_files = 1;
  cfg.partitions_per_file = 1;
  cfg.num_adps = 1;
  cfg.log_medium = tp::LogMedium::kPm;
  cfg.pm_device = workload::PmDeviceKind::kNpmuPair;
  workload::Rig rig(sim, cfg);
  sim.RunFor(Seconds(1));
  bool done = false;
  sim.Adopt<AppProcess>(rig.cluster(), 2, "app",
                        [&](AppProcess& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto region = co_await client.Create("r", 4096);
    EXPECT_TRUE(region.ok());
    std::vector<pm::PmRegion::ScatterOp> ops;
    ops.push_back({0, std::vector<std::byte>(64, std::byte{1})});
    ops.push_back({4090, std::vector<std::byte>(64, std::byte{2})});  // over
    auto st = co_await region->WriteScatter(std::move(ops));
    EXPECT_EQ(st.code(), ErrorCode::kOutOfRange);
    done = true;
  });
  sim.RunFor(Seconds(30));
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------- channel

TEST(ChannelExtrasTest, ReceiveForGetsValueArrivingJustInTime) {
  sim::Simulation sim;
  sim::Channel<int> ch(sim);
  std::optional<int> got;
  sim.Spawn<LambdaProcess>("r", [&](LambdaProcess& self) -> Task<void> {
    got = co_await ch.ReceiveFor(self, Milliseconds(10));
  });
  sim.Schedule(SimTime{Milliseconds(10).ns - 1}, [&] { ch.Send(5); });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 5);
}

TEST(ChannelExtrasTest, SizeAndEmptyReflectBuffering) {
  sim::Simulation sim;
  sim::Channel<int> ch(sim);
  EXPECT_TRUE(ch.empty());
  ch.Send(1);
  ch.Send(2);
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_FALSE(ch.empty());
}

}  // namespace
}  // namespace ods

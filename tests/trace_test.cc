// End-to-end tests for the observability layer on the full stack:
//
//   * byte-determinism — two identically-seeded hot-stock runs (and two
//     identical crash-rig schedules) export byte-identical Chrome trace
//     JSON. Sim-time stamping makes any nondeterminism in the stack show
//     up as a trace diff, so this doubles as a regression net;
//   * op-id threading — one committed boxcar transaction is followable
//     across every lane (workload -> TMF -> ADP -> PM client -> fabric)
//     by the op id stamped into the exported events;
//   * BenchJson — the bench harness writes a nested document that parses
//     back with the registry snapshot and latency summaries intact.
#include "common/trace.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <span>
#include <string>

#include "common/crc32.h"

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "sim/simulation.h"
#include "workload/crash_rig.h"
#include "workload/hot_stock.h"
#include "workload/rig.h"

namespace ods {
namespace {

workload::RigConfig SmallPmRig() {
  workload::RigConfig cfg;
  cfg.num_cpus = 4;
  cfg.num_files = 2;
  cfg.partitions_per_file = 2;
  cfg.num_adps = 2;
  cfg.log_medium = tp::LogMedium::kPm;
  cfg.pm_device = workload::PmDeviceKind::kNpmuPair;
  cfg.pm_tcb = true;
  return cfg;
}

// Runs a small PM-backed hot-stock workload with tracing on and returns
// the exported Chrome trace. Everything inside is seeded from `seed`.
std::string RunTracedHotStock(std::uint64_t seed) {
  sim::Simulation sim(seed);
  Tracer tracer;
  tracer.Enable(1u << 15);
  sim.set_tracer(&tracer);
  {
    workload::Rig rig(sim, SmallPmRig());
    sim.RunFor(sim::Seconds(1));
    workload::HotStockConfig hs;
    hs.drivers = 2;
    hs.inserts_per_txn = 8;
    hs.records_per_driver = 64;
    hs.record_bytes = 512;
    (void)workload::RunHotStock(rig, hs);
  }
  sim.set_tracer(nullptr);
  return tracer.ToChromeJson();
}

TEST(TraceDeterminism, SeededHotStockRunsExportIdenticalBytes) {
  const std::string a = RunTracedHotStock(42);
  const std::string b = RunTracedHotStock(42);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_TRUE(JsonValue::Parse(a).has_value());
}

// Cross-engine golden: the calendar-queue engine must export the same
// bytes the seed (std::priority_queue) engine did. The values below
// were captured from BOTH engine generations on the SmallPmRig hot-stock
// config — trace and metrics agree to the byte, so any future engine
// change that perturbs dispatch order shows up here as a CRC diff, not
// just as "two runs of the same binary agree".
//
// events_executed is pinned to the current engine: the seed executed
// 5738 events on this config, the calendar engine 5354, because batched
// fabric delivery applies a boxcar's packets in one event instead of N.
// The count is asserted so the event budget can't silently drift.
TEST(TraceDeterminism, GoldenBytesMatchSeedEngine) {
  for (std::uint64_t seed : {42ull, 11ull}) {
    sim::Simulation sim(seed);
    Tracer tracer;
    tracer.Enable(1u << 15);
    sim.set_tracer(&tracer);
    std::string metrics;
    {
      workload::Rig rig(sim, SmallPmRig());
      sim.RunFor(sim::Seconds(1));
      workload::HotStockConfig hs;
      hs.drivers = 2;
      hs.inserts_per_txn = 8;
      hs.records_per_driver = 64;
      hs.record_bytes = 512;
      (void)workload::RunHotStock(rig, hs);
      metrics = sim.metrics().Snapshot().Serialize();
    }
    sim.set_tracer(nullptr);
    const std::string trace = tracer.ToChromeJson();
    EXPECT_EQ(sim.events_executed(), 5354u) << "seed " << seed;
    EXPECT_EQ(trace.size(), 39901u) << "seed " << seed;
    EXPECT_EQ(Crc32c(std::as_bytes(std::span(trace.data(), trace.size()))),
              0xfd4fc063u)
        << "seed " << seed;
    EXPECT_EQ(metrics.size(), 440u) << "seed " << seed;
    EXPECT_EQ(
        Crc32c(std::as_bytes(std::span(metrics.data(), metrics.size()))),
        0x7f1096d9u)
        << "seed " << seed;
  }
}

TEST(TraceDeterminism, CrashRigSchedulesExportIdenticalBytes) {
  // Record pass (no fault armed).
  auto r1 = workload::RunCrashScenario(7, workload::CrashMode::kNone,
                                       std::nullopt, /*capture_trace=*/true);
  auto r2 = workload::RunCrashScenario(7, workload::CrashMode::kNone,
                                       std::nullopt, /*capture_trace=*/true);
  EXPECT_TRUE(r1.violations.empty());
  ASSERT_FALSE(r1.trace_json.empty());
  EXPECT_EQ(r1.trace_json, r2.trace_json);
  EXPECT_TRUE(JsonValue::Parse(r1.trace_json).has_value());

  // One armed schedule: the crash + recovery path must replay
  // identically too. (Site 10 is a mid-scenario write-ack the halt mode
  // actually fires at — the earliest sites precede the armable window.)
  auto c1 = workload::RunCrashScenario(7, workload::CrashMode::kHaltPrimaryPmm,
                                       10, /*capture_trace=*/true);
  auto c2 = workload::RunCrashScenario(7, workload::CrashMode::kHaltPrimaryPmm,
                                       10, /*capture_trace=*/true);
  ASSERT_TRUE(c1.fired_at.has_value());
  EXPECT_TRUE(c1.violations.empty());
  ASSERT_FALSE(c1.trace_json.empty());
  EXPECT_EQ(c1.trace_json, c2.trace_json);
  // The armed run diverges from the record pass after the fired site.
  EXPECT_NE(c1.trace_json, r1.trace_json);
}

// The open-loop fleet and the sharded plane both key their randomness
// off Rng::ForStream(master, k). These pin the property the scale-out
// sweep depends on: stream k is a pure function of (master, k), so
// growing a rig from 4 drivers to 1000 — or 1 shard to 8 — never
// perturbs the draws of the streams that were already there (which is
// also what keeps the 1-shard/4-driver goldens above byte-identical).
TEST(RngStreams, StreamIsAPureFunctionOfSeedAndIndex) {
  Rng small_fleet[4] = {Rng::ForStream(42, 0), Rng::ForStream(42, 1),
                        Rng::ForStream(42, 2), Rng::ForStream(42, 3)};
  // Derive the same four streams "inside" a 1000-stream fleet, in
  // reverse order, after draining an unrelated stream — none of which
  // may matter.
  Rng noise = Rng::ForStream(42, 999);
  for (int i = 0; i < 17; ++i) (void)noise.Next();
  for (int k = 3; k >= 0; --k) {
    Rng again = Rng::ForStream(42, static_cast<std::uint64_t>(k));
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(small_fleet[k].Next(), again.Next()) << "stream " << k;
    }
  }
}

TEST(RngStreams, NeighboringStreamsAndSeedsDiverge) {
  // Adjacent streams of one master and the same stream of adjacent
  // masters must all disagree from the first draw (the SplitMix64
  // finalizer decorrelates them despite the tiny input distance).
  std::set<std::uint64_t> firsts;
  for (std::uint64_t k = 0; k < 64; ++k) {
    firsts.insert(Rng::ForStream(7, k).Next());
    firsts.insert(Rng::ForStream(8, k).Next());
  }
  EXPECT_EQ(firsts.size(), 128u);
}

TEST(TraceOpId, OneCommitIsFollowableAcrossAllLanes) {
  const std::string json = RunTracedHotStock(11);
  auto doc = JsonValue::Parse(json);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Lanes seen per op id, from complete spans carrying args.op.
  std::map<std::uint64_t, std::set<int>> lanes_by_op;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || ph->str() != "X") continue;
    const JsonValue* args = e.Find("args");
    if (args == nullptr) continue;
    const JsonValue* op = args->Find("op");
    if (op == nullptr || op->number() == 0.0) continue;
    lanes_by_op[static_cast<std::uint64_t>(op->number())].insert(
        static_cast<int>(e.Find("tid")->number()));
  }

  // At least one committed transaction's op id must cross every layer of
  // the durable-write path: workload (1), TMF (2), ADP (3), PM client
  // (4), fabric (5).
  const std::set<int> want = {1, 2, 3, 4, 5};
  bool found = false;
  for (const auto& [op, lanes] : lanes_by_op) {
    if (std::includes(lanes.begin(), lanes.end(), want.begin(), want.end())) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "no op id spans all five trace lanes";
}

TEST(BenchJson, WritesNestedDocumentThatRoundTrips) {
  bench::BenchJson json("ut_roundtrip");
  json.Set("elapsed_s", 1.5);

  LatencyHistogram h;
  for (std::uint64_t i = 1; i <= 100; ++i) h.Record(i * 1000);
  json.SetLatency("txn", h);
  json.SetOpsPerSec("txn", h);  // merges into the same nested object

  JsonValue rows = JsonValue::Array();
  for (int k : {1, 8}) {
    JsonValue row = JsonValue::Object();
    row.Set("boxcar", k);
    row.Set("label", "K=\"" + std::to_string(k) + "\"");  // needs escaping
    rows.Append(std::move(row));
  }
  json.Set("rows", std::move(rows));

  MetricsRegistry m;
  m.GetCounter("x.ops").Add(3);
  m.GetHistogram("x.lat").Record(500);
  json.AttachMetrics(m);
  ASSERT_TRUE(json.Write());

  std::FILE* f = std::fopen("BENCH_ut_roundtrip.json", "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove("BENCH_ut_roundtrip.json");

  auto doc = JsonValue::Parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  EXPECT_EQ(doc->Find("bench")->str(), "ut_roundtrip");
  EXPECT_DOUBLE_EQ(doc->Find("elapsed_s")->number(), 1.5);

  const JsonValue* txn = doc->Find("txn");
  ASSERT_NE(txn, nullptr);
  EXPECT_EQ(txn->Find("count")->number(), 100.0);
  ASSERT_NE(txn->Find("p99_us"), nullptr);
  ASSERT_NE(txn->Find("ops_per_sec"), nullptr);

  const JsonValue* rows_back = doc->Find("rows");
  ASSERT_NE(rows_back, nullptr);
  ASSERT_EQ(rows_back->size(), 2u);
  EXPECT_EQ(rows_back->at(0).Find("label")->str(), "K=\"1\"");

  const JsonValue* counters = doc->Find("metrics")->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("x.ops")->number(), 3.0);
}

}  // namespace
}  // namespace ods

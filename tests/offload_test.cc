// Near-data offload tests: the canonical frame walk (common/framescan.h)
// and its two consumers — the host-side chunked volume scan
// (tp::ScanFramedVolume) and the device-side command engine
// (pm/offload.h). The load-bearing property is agreement: the device's
// VerifyScan must land on exactly the durable tail the host scan would,
// and ShipReplay must return exactly the records the host's two-pass
// redo filter would apply. Plus the PmLogDevice Compact round-trip
// (host path and single-command device path) and end-to-end offloaded
// power-loss recovery on the full rig.
//
// ASSERT_* returns from the enclosing function and so cannot be used in
// coroutine bodies; fatal checks there are EXPECT_* followed by an
// explicit co_return.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "common/framescan.h"
#include "common/keyhash.h"
#include "common/serialize.h"
#include "db/txn_client.h"
#include "nsk/cluster.h"
#include "pm/client.h"
#include "pm/manager.h"
#include "pm/npmu.h"
#include "pm/offload.h"
#include "sim/simulation.h"
#include "storage/disk.h"
#include "tp/audit.h"
#include "tp/log_device.h"
#include "workload/rig.h"

namespace ods {
namespace {

using sim::Seconds;
using sim::Task;

class App : public nsk::NskProcess {
 public:
  using Body = std::function<Task<void>(App&)>;
  App(nsk::Cluster& cluster, int cpu, std::string name, Body body)
      : NskProcess(cluster, cpu, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

tp::AuditRecord MakeRecord(std::uint64_t lsn, std::uint64_t txn,
                           tp::AuditType type, std::uint32_t file_id,
                           std::uint64_t key, std::uint8_t fill,
                           std::size_t bytes = 96) {
  tp::AuditRecord r;
  r.lsn = lsn;
  r.txn = txn;
  r.type = type;
  r.file_id = file_id;
  r.key = key;
  r.after_image.assign(bytes, static_cast<std::byte>(fill));
  return r;
}

// Appends a framed record and returns the frame's size in bytes.
std::uint64_t AppendFrame(std::vector<std::byte>& img,
                          const tp::AuditRecord& rec) {
  const std::size_t before = img.size();
  tp::FrameRecord(rec, img);
  return img.size() - before;
}

// ------------------------------------------------- frame walk semantics

TEST(FrameScan, LenZeroSentinelIsAHardStop) {
  std::vector<std::byte> img;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    AppendFrame(img, MakeRecord(i, 7, tp::AuditType::kUpdate, 0, i, 0x10));
  }
  const std::uint64_t frames_end = img.size();
  img.resize(frames_end + 64);  // zeroed space after the log: the sentinel

  FrameScanState st;
  FrameScanStep(img, st);
  EXPECT_EQ(st.durable_tail, frames_end);
  EXPECT_EQ(st.frame_count, 3u);
  EXPECT_TRUE(st.hard_stop) << "len==0 must end the walk definitively";

  // A virgin (all-zero) log is empty, not torn.
  std::vector<std::byte> zeros(256);
  EXPECT_EQ(FrameScanPrefix(zeros), 0u);
  EXPECT_EQ(FrameScanPrefix({}), 0u);
}

TEST(FrameScan, CrcMismatchStopsAtLastValidFrame) {
  std::vector<std::byte> img;
  const std::uint64_t s1 =
      AppendFrame(img, MakeRecord(1, 7, tp::AuditType::kUpdate, 0, 1, 0x11));
  AppendFrame(img, MakeRecord(2, 7, tp::AuditType::kUpdate, 0, 2, 0x22));
  img[s1 + 20] ^= std::byte{0x5A};  // corrupt the second frame's payload

  FrameScanState st;
  FrameScanStep(img, st);
  EXPECT_EQ(st.durable_tail, s1);
  EXPECT_EQ(st.frame_count, 1u);
  EXPECT_TRUE(st.hard_stop);
}

TEST(FrameScan, StepResumesAcrossChunkBoundaries) {
  // Feeding the image in arbitrary chunk sizes must reach the same tail
  // as the one-shot walk, without a frame straddling a boundary being
  // mistaken for a torn tail mid-stream.
  std::vector<std::byte> img;
  for (std::uint64_t i = 1; i <= 40; ++i) {
    AppendFrame(img, MakeRecord(i, 3, tp::AuditType::kUpdate, 0, i, 0x33,
                                64 + (i % 7) * 33));
  }
  const std::uint64_t want = FrameScanPrefix(img);
  ASSERT_EQ(want, img.size());

  for (std::size_t chunk : {7u, 100u, 1000u, 4096u}) {
    FrameScanState st;
    std::vector<std::byte> fed;
    std::uint64_t prev_tail = 0;
    for (std::size_t off = 0; off < img.size(); off += chunk) {
      const std::size_t n = std::min(chunk, img.size() - off);
      fed.insert(fed.end(), img.begin() + static_cast<std::ptrdiff_t>(off),
                 img.begin() + static_cast<std::ptrdiff_t>(off + n));
      FrameScanStep(fed, st);
      EXPECT_FALSE(st.hard_stop)
          << "chunk " << chunk << ": straddling frame mistaken for torn";
      EXPECT_GE(st.durable_tail, prev_tail);
      prev_tail = st.durable_tail;
    }
    EXPECT_EQ(st.durable_tail, want) << "chunk " << chunk;
    EXPECT_EQ(st.frame_count, 40u) << "chunk " << chunk;
  }
}

TEST(FrameScan, PeekMatchesAuditSerializer) {
  // PeekFramedRecord mirrors tp/audit.cc's payload layout by fixed
  // offsets; pin the two (and the AuditType values the device filter
  // hard-codes) so a serializer change cannot silently skew the filter.
  const auto rec = MakeRecord(42, 9000000007ull, tp::AuditType::kUpdate,
                              3, 0xDEADBEEFCAFEull, 0x77, 200);
  std::vector<std::byte> img;
  AppendFrame(img, rec);

  FramedRecordHeader h;
  ASSERT_TRUE(PeekFramedRecord(img, 0, h));
  EXPECT_EQ(h.lsn, rec.lsn);
  EXPECT_EQ(h.txn, rec.txn);
  EXPECT_EQ(h.type, static_cast<std::uint32_t>(rec.type));
  EXPECT_EQ(h.file_id, rec.file_id);
  EXPECT_EQ(h.key, rec.key);

  EXPECT_EQ(kFramedAuditUpdate,
            static_cast<std::uint32_t>(tp::AuditType::kUpdate));
  EXPECT_EQ(kFramedAuditCommit,
            static_cast<std::uint32_t>(tp::AuditType::kCommit));

  // Out-of-bounds peeks fail instead of reading past the image.
  EXPECT_FALSE(PeekFramedRecord(img, img.size() - 4, h));
  EXPECT_FALSE(PeekFramedRecord(std::span<const std::byte>(img).first(10), 0, h));
}

// --------------------------------------------- chunked disk volume scan

constexpr std::uint64_t kScanChunk = 4 << 20;  // ScanFramedVolume's stride

struct DiskScanTest : ::testing::Test {
  DiskScanTest() : sim(7), cluster(sim, {}) {}
  ~DiskScanTest() override { sim.Shutdown(); }

  static storage::DiskConfig SmallDisk() {
    storage::DiskConfig c;
    c.capacity_bytes = 8ull << 20;  // two scan chunks
    return c;
  }

  // Frames of ~1KB until the image extends past the first chunk edge.
  // Returns the image; `straddle_start` is the offset of the frame that
  // crosses the 4MiB boundary.
  static std::vector<std::byte> BuildPastChunkEdge(
      std::uint64_t& straddle_start) {
    std::vector<std::byte> img;
    straddle_start = 0;
    std::uint64_t lsn = 0;
    while (img.size() <= kScanChunk + 16 * 1024) {
      const std::uint64_t start = img.size();
      ++lsn;
      AppendFrame(img, MakeRecord(lsn, 5, tp::AuditType::kUpdate, 0, lsn,
                                  static_cast<std::uint8_t>(lsn), 960));
      if (start < kScanChunk && img.size() > kScanChunk) {
        straddle_start = start;
      }
    }
    return img;
  }

  sim::Simulation sim;
  nsk::Cluster cluster;
};

TEST_F(DiskScanTest, FrameStraddlingChunkBoundarySurvivesScan) {
  storage::DiskVolume volume(sim, "$VOL", SmallDisk());
  std::uint64_t straddle_start = 0;
  const std::vector<std::byte> img = BuildPastChunkEdge(straddle_start);
  ASSERT_GT(straddle_start, 0u) << "no frame straddles the chunk edge";
  ASSERT_LT(straddle_start, kScanChunk);

  bool done = false;
  sim.Adopt<App>(cluster, 2, "scan", [&](App& self) -> Task<void> {
    EXPECT_TRUE((co_await volume.Write(self, 0, img)).ok());
    auto log = co_await tp::ScanFramedVolume(self, volume);
    EXPECT_TRUE(log.ok()) << log.status().ToString();
    if (!log.ok()) co_return;
    // The straddling frame is valid — the scan must keep it and
    // everything after it, not truncate at the chunk edge.
    EXPECT_EQ(log->size(), img.size());
    EXPECT_TRUE(std::equal(log->begin(), log->end(), img.begin()));
    done = true;
  });
  sim.RunFor(Seconds(60));
  ASSERT_TRUE(done);
}

TEST_F(DiskScanTest, TornFrameAtChunkEdgeTruncatesToValidPrefix) {
  storage::DiskVolume volume(sim, "$VOL", SmallDisk());
  // Valid frames up to the chunk edge, then a frame that crosses it but
  // was torn mid-write: only its bytes below 4MiB landed, the rest of
  // the volume is zero.
  std::vector<std::byte> img;
  std::uint64_t lsn = 0;
  while (true) {
    std::vector<std::byte> probe = img;
    AppendFrame(probe, MakeRecord(lsn + 1, 5, tp::AuditType::kUpdate, 0,
                                  lsn + 1, 0x44, 960));
    if (probe.size() > kScanChunk) break;
    img = std::move(probe);
    ++lsn;
  }
  const std::uint64_t valid_end = img.size();
  ASSERT_GT(valid_end, 0u);
  AppendFrame(img, MakeRecord(lsn + 1, 5, tp::AuditType::kUpdate, 0, lsn + 1,
                              0x45, 2048));
  ASSERT_GT(img.size(), kScanChunk) << "torn frame must cross the edge";
  img.resize(kScanChunk);  // the write tore exactly at the chunk edge

  bool done = false;
  sim.Adopt<App>(cluster, 2, "scan", [&](App& self) -> Task<void> {
    EXPECT_TRUE((co_await volume.Write(self, 0, img)).ok());
    auto log = co_await tp::ScanFramedVolume(self, volume);
    EXPECT_TRUE(log.ok()) << log.status().ToString();
    if (!log.ok()) co_return;
    EXPECT_EQ(log->size(), valid_end)
        << "scan must keep the valid prefix and drop the torn frame";
    done = true;
  });
  sim.RunFor(Seconds(60));
  ASSERT_TRUE(done);
}

// ------------------------------------------------- device command engine

// PM rig: 4-CPU cluster, mirrored hardware NPMUs, PMM pair — with the
// command engines armed or passive.
struct DeviceRig {
  explicit DeviceRig(bool active, std::uint64_t seed = 13)
      : sim(seed), cluster(sim, ClusterCfg()),
        npmu_a(cluster.fabric(), "npmu-a", NpmuCfg(active)),
        npmu_b(cluster.fabric(), "npmu-b", NpmuCfg(active)) {
    pmm_p = &sim.AdoptStopped<pm::PmManager>(cluster, 0, "$PMM", "$PMM-P",
                                             pm::PmDevice(npmu_a),
                                             pm::PmDevice(npmu_b), "$PM1");
    pmm_b = &sim.AdoptStopped<pm::PmManager>(cluster, 1, "$PMM", "$PMM-B",
                                             pm::PmDevice(npmu_a),
                                             pm::PmDevice(npmu_b), "$PM1");
    pmm_p->SetPeer(pmm_b);
    pmm_b->SetPeer(pmm_p);
    pmm_p->Start();
    pmm_b->Start();
  }
  ~DeviceRig() { sim.Shutdown(); }

  static nsk::ClusterConfig ClusterCfg() {
    nsk::ClusterConfig c;
    c.num_cpus = 4;
    return c;
  }
  static pm::NpmuConfig NpmuCfg(bool active) {
    pm::NpmuConfig c;
    c.active_commands = active;
    return c;
  }

  void Run(App::Body body) {
    bool done = false;
    sim.Adopt<App>(cluster, 2, "app" + std::to_string(app_seq_++),
                   [&done, body = std::move(body)](App& self) -> Task<void> {
                     co_await body(self);
                     done = true;
                   });
    sim.RunFor(Seconds(60));
    ASSERT_TRUE(done) << "app did not finish (a fatal check co_returned?)";
  }

  sim::Simulation sim;
  nsk::Cluster cluster;
  pm::Npmu npmu_a;
  pm::Npmu npmu_b;
  pm::PmManager* pmm_p;
  pm::PmManager* pmm_b;
  int app_seq_ = 0;
};

TEST(OffloadDevice, HostAndDeviceScanAgreeOnRandomizedLogs) {
  DeviceRig rig(/*active=*/true);
  rig.Run([&](App& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto region = co_await client.Create("difflog", 64 * 1024);
    EXPECT_TRUE(region.ok()) << region.status().ToString();
    if (!region.ok()) co_return;

    std::mt19937_64 rng(0xC0FFEE);
    constexpr std::size_t kBuf = 16 * 1024;
    for (int round = 0; round < 9; ++round) {
      // A random log: clean, torn tail, or corrupted tail frame.
      std::vector<std::byte> img;
      const int frames = 3 + static_cast<int>(rng() % 8);
      std::uint64_t last_size = 0;
      for (int i = 1; i <= frames; ++i) {
        last_size = AppendFrame(
            img, MakeRecord(static_cast<std::uint64_t>(round * 100 + i),
                            rng() % 5, tp::AuditType::kUpdate,
                            static_cast<std::uint32_t>(rng() % 3), rng(),
                            static_cast<std::uint8_t>(i),
                            16 + rng() % 256));
      }
      if (round % 3 == 1) {
        img.resize(img.size() - last_size / 2);  // torn tail
      } else if (round % 3 == 2) {
        img[img.size() - last_size / 2] ^= std::byte{0x5A};  // corrupt tail
      }
      std::vector<std::byte> buf(kBuf);
      EXPECT_LE(img.size(), kBuf);
      std::copy(img.begin(), img.end(), buf.begin());

      // Host verdict on exactly the bytes the device will see.
      FrameScanState host;
      FrameScanStep(buf, host);
      std::uint64_t host_last_lsn = 0;
      if (host.frame_count > 0) {
        FramedRecordHeader h;
        EXPECT_TRUE(PeekFramedRecord(buf, host.last_frame_off, h));
        host_last_lsn = h.lsn;
      }

      EXPECT_TRUE((co_await region->Write(0, buf)).ok());
      auto resp = co_await region->DeviceCommand(
          pm::kCmdVerifyScan,
          pm::BuildVerifyScanRequest(pm::kScanCrcFrames,
                                     region->handle().nva, kBuf));
      EXPECT_TRUE(resp.ok()) << resp.status().ToString();
      if (!resp.ok()) co_return;
      pm::VerifyScanResult res;
      EXPECT_TRUE(pm::ParseVerifyScanResponse(*resp, res));
      EXPECT_EQ(res.durable_tail, host.durable_tail) << "round " << round;
      EXPECT_EQ(res.frame_count, host.frame_count) << "round " << round;
      EXPECT_EQ(res.last_lsn, host_last_lsn) << "round " << round;
      EXPECT_EQ(res.first_bad_off,
                host.hard_stop ? host.durable_tail : ~0ull)
          << "round " << round;
    }
  });
}

TEST(OffloadDevice, ShipReplayShipsExactlyCommittedPartitionUpdates) {
  DeviceRig rig(/*active=*/true);
  rig.Run([&](App& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto region = co_await client.Create("shiplog", 64 * 1024);
    EXPECT_TRUE(region.ok()) << region.status().ToString();
    if (!region.ok()) co_return;

    // txn 7 commits (updates across two files), txn 9 never commits,
    // txn 8 aborts — only txn 7's file-0 updates may ship.
    std::vector<tp::AuditRecord> recs;
    std::uint64_t lsn = 0;
    for (std::uint64_t key = 0; key < 6; ++key) {
      ++lsn;
      recs.push_back(MakeRecord(lsn, 7, tp::AuditType::kUpdate, 0, key,
                                static_cast<std::uint8_t>(0x10 + key)));
    }
    recs.push_back(MakeRecord(++lsn, 7, tp::AuditType::kUpdate, 1, 100, 0x20));
    recs.push_back(MakeRecord(++lsn, 9, tp::AuditType::kUpdate, 0, 6, 0x30));
    recs.push_back(MakeRecord(++lsn, 8, tp::AuditType::kUpdate, 0, 7, 0x40));
    recs.push_back(MakeRecord(++lsn, 8, tp::AuditType::kAbort, 0, 0, 0x00, 0));
    recs.push_back(MakeRecord(++lsn, 7, tp::AuditType::kCommit, 0, 0, 0x00, 0));

    std::vector<std::byte> img;
    std::vector<std::uint64_t> starts;
    for (const auto& r : recs) {
      starts.push_back(img.size());
      AppendFrame(img, r);
    }
    std::vector<std::byte> buf(16 * 1024);
    std::copy(img.begin(), img.end(), buf.begin());
    EXPECT_TRUE((co_await region->Write(0, buf)).ok());

    constexpr std::uint32_t kParts = 2;
    std::vector<std::byte> shipped_total;
    for (std::uint32_t part = 0; part < kParts; ++part) {
      // Host-side expectation: verbatim frames of committed file-0
      // updates routed to this partition, in log order.
      std::vector<std::byte> want;
      for (std::size_t i = 0; i < recs.size(); ++i) {
        const auto& r = recs[i];
        if (r.type == tp::AuditType::kUpdate && r.txn == 7 &&
            r.file_id == 0 && KeyPartition(r.key, kParts) == part) {
          const std::uint64_t end =
              i + 1 < starts.size() ? starts[i + 1] : img.size();
          want.insert(want.end(),
                      img.begin() + static_cast<std::ptrdiff_t>(starts[i]),
                      img.begin() + static_cast<std::ptrdiff_t>(end));
        }
      }
      auto resp = co_await region->DeviceCommand(
          pm::kCmdShipReplay,
          pm::BuildShipReplayRequest(region->handle().nva, buf.size(), 0,
                                     part, kParts));
      EXPECT_TRUE(resp.ok()) << resp.status().ToString();
      if (!resp.ok()) co_return;
      EXPECT_EQ(*resp, want) << "partition " << part;
      shipped_total.insert(shipped_total.end(), resp->begin(), resp->end());

      // The stream is LogScanner-ready: every record parses, and all are
      // committed file-0 updates of this partition.
      tp::LogScanner scan(*resp);
      std::uint64_t n = 0;
      while (auto rec = scan.Next()) {
        EXPECT_EQ(rec->txn, 7u);
        EXPECT_EQ(rec->file_id, 0u);
        EXPECT_EQ(KeyPartition(rec->key, kParts), part);
        ++n;
      }
      EXPECT_EQ(scan.offset(), resp->size());
      EXPECT_GT(n, 0u) << "partition " << part << " shipped nothing";
    }
    // Across all partitions: exactly the 6 committed file-0 updates.
    tp::LogScanner all(shipped_total);
    std::uint64_t total = 0;
    while (all.Next()) ++total;
    EXPECT_EQ(total, 6u);
  });
}

TEST(OffloadDevice, StripeScanReturnsFrameTable) {
  DeviceRig rig(/*active=*/true);
  rig.Run([&](App& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto region = co_await client.Create("stripes", 64 * 1024);
    EXPECT_TRUE(region.ok());
    if (!region.ok()) co_return;

    // Stripe framing: [goff u64][len u32][payload]. Final frame's length
    // runs past the window (a torn stripe) and must be excluded.
    Serializer s;
    auto stripe = [&s](std::uint64_t goff, std::uint32_t len) {
      s.PutU64(goff);
      s.PutU32(len);
      for (std::uint32_t i = 0; i < len; ++i) s.PutU8(0xAB);
    };
    stripe(0, 100);
    stripe(100, 50);
    s.PutU64(150);
    s.PutU32(60000);  // extends past the window: torn
    std::vector<std::byte> buf = std::move(s).Take();
    const std::uint64_t limit = 1024;
    buf.resize(limit);
    EXPECT_TRUE((co_await region->Write(0, buf)).ok());

    auto resp = co_await region->DeviceCommand(
        pm::kCmdVerifyScan,
        pm::BuildVerifyScanRequest(pm::kScanStripeFrames,
                                   region->handle().nva, limit));
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    if (!resp.ok()) co_return;
    std::vector<pm::StripeFrame> frames;
    EXPECT_TRUE(pm::ParseStripeScanResponse(*resp, frames));
    EXPECT_EQ(frames.size(), 2u);
    if (frames.size() == 2) {
      EXPECT_EQ(frames[0].goff, 0u);
      EXPECT_EQ(frames[0].len, 100u);
      EXPECT_EQ(frames[1].goff, 100u);
      EXPECT_EQ(frames[1].len, 50u);
    }
  });
}

TEST(OffloadDevice, PassiveDeviceRefusesCommands) {
  DeviceRig rig(/*active=*/false);
  rig.Run([&](App& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto region = co_await client.Create("passive", 64 * 1024);
    EXPECT_TRUE(region.ok());
    if (!region.ok()) co_return;
    auto resp = co_await region->DeviceCommand(
        pm::kCmdVerifyScan,
        pm::BuildVerifyScanRequest(pm::kScanCrcFrames,
                                   region->handle().nva, 4096));
    EXPECT_FALSE(resp.ok());
    if (resp.ok()) co_return;
    // The signal every fallback in the stack keys on.
    EXPECT_EQ(resp.status().code(), ErrorCode::kFailedPrecondition)
        << resp.status().ToString();
  });
}

// -------------------------------------------------- PmLogDevice compact

void CompactRoundTrip(bool offload) {
  DeviceRig rig(/*active=*/offload);
  std::vector<std::vector<std::byte>> frames;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    std::vector<std::byte> f;
    AppendFrame(f, MakeRecord(i, 7, tp::AuditType::kUpdate, 0, i,
                              static_cast<std::uint8_t>(0x50 + i),
                              128 * static_cast<std::size_t>(i)));
    frames.push_back(std::move(f));
  }
  const std::uint64_t cut = frames[0].size() + frames[1].size();
  std::vector<std::byte> suffix;
  suffix.insert(suffix.end(), frames[2].begin(), frames[2].end());
  suffix.insert(suffix.end(), frames[3].begin(), frames[3].end());
  std::uint64_t total = 0;
  for (const auto& f : frames) total += f.size();

  rig.Run([&](App& self) -> Task<void> {
    tp::PmLogConfig cfg;
    cfg.region_name = "compact-log";
    cfg.region_bytes = 1 << 20;
    cfg.offload = offload;
    tp::PmLogDevice dev(cfg);
    EXPECT_TRUE((co_await dev.Open(self)).ok());
    for (auto& f : frames) {
      EXPECT_TRUE((co_await dev.Append(self, f)).ok());
    }
    EXPECT_EQ(dev.tail(), total);
    auto st = co_await dev.Compact(self, cut);
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (!st.ok()) co_return;
    EXPECT_EQ(dev.log_base(), cut);
    EXPECT_EQ(dev.tail(), total);
    // Appends keep working above the new base.
    std::vector<std::byte> extra;
    AppendFrame(extra, MakeRecord(5, 7, tp::AuditType::kUpdate, 0, 5, 0x99));
    const std::uint64_t extra_size = extra.size();
    suffix.insert(suffix.end(), extra.begin(), extra.end());
    EXPECT_TRUE((co_await dev.Append(self, std::move(extra))).ok());
    EXPECT_EQ(dev.tail(), total + extra_size);
  });

  // A fresh instance (cold recovery) sees exactly the retained suffix.
  rig.Run([&](App& self) -> Task<void> {
    tp::PmLogConfig cfg;
    cfg.region_name = "compact-log";
    cfg.region_bytes = 1 << 20;
    cfg.offload = offload;
    tp::PmLogDevice dev(cfg);
    auto log = co_await dev.RecoverLog(self);
    EXPECT_TRUE(log.ok()) << log.status().ToString();
    if (!log.ok()) co_return;
    EXPECT_EQ(dev.log_base(), cut);
    EXPECT_EQ(*log, suffix);
    EXPECT_EQ(FrameScanPrefix(*log), log->size())
        << "retained suffix must still parse as whole frames";
  });
  if (offload) {
    const Counter* c = rig.sim.metrics().FindCounter("pm.offload.compactions");
    ASSERT_NE(c, nullptr) << "device-side CompactTo never ran";
    EXPECT_GT(c->value(), 0u);
  }
}

TEST(PmLogCompact, HostPathRetainsSuffix) { CompactRoundTrip(false); }

TEST(PmLogCompact, DeviceCommandRetainsSuffix) { CompactRoundTrip(true); }

// ------------------------------------------- end-to-end rig recovery

TEST(OffloadRecovery, PowerLossRecoveryRunsDeviceSide) {
  sim::Simulation sim(5);
  workload::RigConfig cfg;
  cfg.num_files = 2;
  cfg.partitions_per_file = 2;
  cfg.num_adps = 2;
  cfg.log_medium = tp::LogMedium::kPm;
  cfg.pm_device = workload::PmDeviceKind::kNpmuPair;
  cfg.pm_tcb = true;
  cfg.retain_log_image = false;  // offload replaces the host log image
  cfg.pm_offload = true;
  workload::Rig rig(sim, cfg);
  sim.RunFor(Seconds(1));

  auto value = [](std::uint8_t v) {
    return std::vector<std::byte>(128, static_cast<std::byte>(v));
  };
  bool loaded = false;
  sim.Adopt<App>(rig.cluster(), 2, "load", [&](App& self) -> Task<void> {
    db::TxnClient client(self, rig.catalog());
    auto committed = co_await client.Begin();
    EXPECT_TRUE(committed.ok());
    if (!committed.ok()) co_return;
    for (std::uint64_t key = 500; key < 520; ++key) {
      EXPECT_TRUE((co_await client.Insert(
                       *committed, static_cast<std::uint32_t>(key % 2), key,
                       value(static_cast<std::uint8_t>(key))))
                      .ok());
    }
    EXPECT_TRUE((co_await client.Commit(*committed)).ok());
    auto in_flight = co_await client.Begin();
    if (in_flight.ok()) {
      EXPECT_TRUE(
          (co_await client.Insert(*in_flight, 0, 900, value(0xBD))).ok());
    }
    loaded = true;  // ... no commit: power fails now
  });
  sim.RunFor(Seconds(120));
  ASSERT_TRUE(loaded);

  rig.PowerLoss();
  sim.RunFor(Seconds(1));
  rig.RestartAfterPowerLoss();
  sim.RunFor(Seconds(30));

  bool checked = false;
  sim.Adopt<App>(rig.cluster(), 3, "check", [&](App& self) -> Task<void> {
    db::TxnClient client(self, rig.catalog());
    auto check = co_await client.Begin();
    EXPECT_TRUE(check.ok()) << check.status().ToString();
    if (!check.ok()) co_return;
    for (std::uint64_t key = 500; key < 520; ++key) {
      auto v = co_await client.Read(*check, static_cast<std::uint32_t>(key % 2),
                                    key);
      EXPECT_TRUE(v.ok()) << "committed key " << key
                          << " lost: " << v.status().ToString();
      if (v.ok()) {
        EXPECT_EQ((*v)[0], static_cast<std::byte>(key));
      }
    }
    auto missing = co_await client.Read(*check, 0, 900);
    EXPECT_EQ(missing.status().code(), ErrorCode::kNotFound)
        << "uncommitted data must not survive";
    EXPECT_TRUE((co_await client.Commit(*check)).ok());
    checked = true;
  });
  sim.RunFor(Seconds(120));
  ASSERT_TRUE(checked);

  // The recovery actually ran device-side, not through a silent fallback.
  const Counter* scans = sim.metrics().FindCounter("pm.offload.verify_scans");
  ASSERT_NE(scans, nullptr) << "no VerifyScan command ever reached a device";
  EXPECT_GT(scans->value(), 0u);
  const Counter* ships = sim.metrics().FindCounter("pm.offload.replay_ships");
  ASSERT_NE(ships, nullptr) << "no ShipReplay command ever reached a device";
  EXPECT_GT(ships->value(), 0u);
}

}  // namespace
}  // namespace ods

// Service-level tests for the transaction monitor (TMF) and log writer
// (ADP): transaction state machine, audit flush semantics, group commit,
// LSN continuity across failover, PM-resident TCB recovery, and failure
// behaviour when the audit trail is unavailable.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/serialize.h"
#include "db/txn_client.h"
#include "nsk/cluster.h"
#include "pm/manager.h"
#include "pm/npmu.h"
#include "sim/simulation.h"
#include "tp/kinds.h"
#include "tp/log_device.h"
#include "tp/tmf.h"
#include "workload/rig.h"

namespace ods::tp {
namespace {

using db::TxnClient;
using sim::Milliseconds;
using sim::Seconds;
using sim::SimTime;
using sim::Task;

class App : public nsk::NskProcess {
 public:
  using Body = std::function<Task<void>(App&)>;
  App(nsk::Cluster& cluster, int cpu, std::string name, Body body)
      : NskProcess(cluster, cpu, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

struct TmfAdpFixture : ::testing::Test {
  void Start(bool pm, bool pm_tcb = false) {
    rig.reset();
    sim.reset();
    sim = std::make_unique<sim::Simulation>(19);
    workload::RigConfig cfg;
    cfg.num_files = 2;
    cfg.partitions_per_file = 2;
    cfg.num_adps = 2;
    cfg.retain_log_image = true;
    if (pm) {
      cfg.log_medium = LogMedium::kPm;
      cfg.pm_device = workload::PmDeviceKind::kNpmuPair;
      cfg.pm_tcb = pm_tcb;
    }
    rig = std::make_unique<workload::Rig>(*sim, cfg);
    sim->RunFor(Seconds(1));
  }

  void RunApp(App::Body body, int cpu = 2) {
    done = false;
    sim->Adopt<App>(rig->cluster(), cpu, "app" + std::to_string(seq++),
                    [this, body = std::move(body)](App& self) -> Task<void> {
                      co_await body(self);
                      done = true;
                    });
    sim->RunFor(Seconds(120));
    EXPECT_TRUE(done) << "app did not finish";
  }

  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<workload::Rig> rig;
  bool done = false;
  int seq = 0;
};

// ------------------------------------------------------------- TMF states

TEST_F(TmfAdpFixture, TxnStateMachine) {
  Start(false);
  RunApp([&](App& self) -> Task<void> {
    TxnClient client(self, rig->catalog());
    auto t1 = co_await client.Begin();
    EXPECT_TRUE(t1.ok());
    EXPECT_EQ(rig->tmf().StateOf(t1->id), TxnState::kActive);
    EXPECT_TRUE((co_await client.Insert(*t1, 0, 1,
                                        std::vector<std::byte>(16,
                                                               std::byte{1})))
                    .ok());
    EXPECT_TRUE((co_await client.Commit(*t1)).ok());
    EXPECT_EQ(rig->tmf().StateOf(t1->id), TxnState::kCommitted);

    auto t2 = co_await client.Begin();
    EXPECT_TRUE((co_await client.Insert(*t2, 0, 2,
                                        std::vector<std::byte>(16,
                                                               std::byte{2})))
                    .ok());
    EXPECT_TRUE((co_await client.Abort(*t2)).ok());
    EXPECT_EQ(rig->tmf().StateOf(t2->id), TxnState::kAborted);
  });
  EXPECT_EQ(rig->tmf().commits(), 1u);
  EXPECT_EQ(rig->tmf().aborts(), 1u);
}

TEST_F(TmfAdpFixture, CommitOfUnknownTxnRejected) {
  Start(false);
  Status st;
  RunApp([&](App& self) -> Task<void> {
    Serializer s;
    s.PutU64(0xDEAD);  // never begun
    s.PutU32(0);
    s.PutU32(0);
    auto r = co_await self.Call("$TMF", kTmfCommit, std::move(s).Take());
    st = r.ok() ? r->status : r.status();
  });
  EXPECT_EQ(st.code(), ErrorCode::kFailedPrecondition);
}

TEST_F(TmfAdpFixture, DoubleCommitRejected) {
  Start(false);
  RunApp([&](App& self) -> Task<void> {
    TxnClient client(self, rig->catalog());
    auto txn = co_await client.Begin();
    EXPECT_TRUE((co_await client.Insert(*txn, 0, 1,
                                        std::vector<std::byte>(16,
                                                               std::byte{1})))
                    .ok());
    EXPECT_TRUE((co_await client.Commit(*txn)).ok());
    auto again = co_await client.Commit(*txn);
    EXPECT_EQ(again.code(), ErrorCode::kFailedPrecondition);
  });
}

TEST_F(TmfAdpFixture, TxnIdsAreMonotonic) {
  Start(false);
  std::vector<std::uint64_t> ids;
  RunApp([&](App& self) -> Task<void> {
    TxnClient client(self, rig->catalog());
    for (int i = 0; i < 5; ++i) {
      auto txn = co_await client.Begin();
      EXPECT_TRUE(txn.ok());
      ids.push_back(txn->id);
      (void)co_await client.Abort(*txn);
    }
  });
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_GT(ids[i], ids[i - 1]);
  }
}

TEST_F(TmfAdpFixture, CommitFailsCleanlyWhenAuditUnavailable) {
  // Kill BOTH members of an ADP pair: transactions that logged there
  // must abort at commit, and the abort must leave the store consistent.
  Start(false);
  RunApp([&](App& self) -> Task<void> {
    TxnClient client(self, rig->catalog());
    // Find a key on each ADP: insert into both files to involve both.
    auto txn = co_await client.Begin();
    EXPECT_TRUE((co_await client.Insert(*txn, 0, 1,
                                        std::vector<std::byte>(16,
                                                               std::byte{1})))
                    .ok());
    EXPECT_TRUE((co_await client.Insert(*txn, 1, 2,
                                        std::vector<std::byte>(16,
                                                               std::byte{2})))
                    .ok());
    // Kill one ADP pair entirely.
    rig->adps()[1]->Kill();
    if (auto* peer = rig->adps()[1]->peer(); peer != nullptr) peer->Kill();
    auto st = co_await client.Commit(*txn);
    EXPECT_FALSE(st.ok()) << "commit must not succeed without its audit";
    EXPECT_EQ(rig->tmf().StateOf(txn->id), TxnState::kAborted);
    // The aborted writes must be invisible.
    auto check = co_await client.Begin();
    EXPECT_TRUE(check.ok());
    auto cv = co_await client.Read(*check, 0, 1);
    EXPECT_EQ(cv.status().code(), ErrorCode::kNotFound);
  });
}

// ---------------------------------------------------------- PM TCB / MTTR

TEST_F(TmfAdpFixture, PmTcbStateSurvivesPowerLoss) {
  Start(true, /*pm_tcb=*/true);
  std::uint64_t committed_id = 0, aborted_id = 0;
  RunApp([&](App& self) -> Task<void> {
    TxnClient client(self, rig->catalog());
    auto t1 = co_await client.Begin();
    EXPECT_TRUE((co_await client.Insert(*t1, 0, 1,
                                        std::vector<std::byte>(16,
                                                               std::byte{1})))
                    .ok());
    EXPECT_TRUE((co_await client.Commit(*t1)).ok());
    committed_id = t1->id;
    auto t2 = co_await client.Begin();
    (void)co_await client.Abort(*t2);
    aborted_id = t2->id;
  });
  rig->PowerLoss();
  sim->RunFor(Seconds(1));
  rig->RestartAfterPowerLoss();
  sim->RunFor(Seconds(20));

  // The recovered TMF must know both outcomes directly from the PM TCB
  // trail (no audit scan).
  EXPECT_EQ(rig->tmf().StateOf(committed_id), TxnState::kCommitted);
  EXPECT_EQ(rig->tmf().StateOf(aborted_id), TxnState::kAborted);
  EXPECT_LT(sim::ToMillisD(rig->tmf().last_recovery_time()), 5.0)
      << "PM TCB recovery is direct reads, not a scan";
}

TEST_F(TmfAdpFixture, ScanBasedTcbRecoveryAlsoWorksButSlower) {
  Start(false);
  std::uint64_t committed_id = 0;
  RunApp([&](App& self) -> Task<void> {
    TxnClient client(self, rig->catalog());
    auto t1 = co_await client.Begin();
    EXPECT_TRUE((co_await client.Insert(*t1, 0, 1,
                                        std::vector<std::byte>(16,
                                                               std::byte{1})))
                    .ok());
    EXPECT_TRUE((co_await client.Commit(*t1)).ok());
    committed_id = t1->id;
  });
  rig->PowerLoss();
  sim->RunFor(Seconds(1));
  rig->RestartAfterPowerLoss();
  sim->RunFor(Seconds(30));

  EXPECT_EQ(rig->tmf().StateOf(committed_id), TxnState::kCommitted);
  EXPECT_GT(sim::ToMillisD(rig->tmf().last_recovery_time()), 10.0)
      << "scan-based recovery pays the audit-trail search";
}

// ------------------------------------------------------------------- ADP

TEST_F(TmfAdpFixture, GroupCommitSharesFlushes) {
  // N concurrent committers against ONE audit trail must need far fewer
  // media flushes than N.
  Start(false);
  rig.reset();
  sim.reset();
  sim = std::make_unique<sim::Simulation>(19);
  workload::RigConfig cfg;
  cfg.num_files = 2;
  cfg.partitions_per_file = 2;
  cfg.num_adps = 1;  // one shared trail
  rig = std::make_unique<workload::Rig>(*sim, cfg);
  sim->RunFor(Seconds(1));

  constexpr int kApps = 8;
  constexpr int kTxns = 6;
  int finished = 0;
  for (int a = 0; a < kApps; ++a) {
    sim->Adopt<App>(rig->cluster(), a % 4, "app" + std::to_string(a),
                    [&, a](App& self) -> Task<void> {
                      TxnClient client(self, rig->catalog());
                      for (int t = 0; t < kTxns; ++t) {
                        auto txn = co_await client.Begin();
                        if (!txn.ok()) continue;
                        (void)co_await client.Insert(
                            *txn, 0,
                            static_cast<std::uint64_t>(a) * 1000 +
                                static_cast<std::uint64_t>(t),
                            std::vector<std::byte>(512, std::byte{1}));
                        (void)co_await client.Commit(*txn);
                      }
                      ++finished;
                    });
  }
  sim->RunFor(Seconds(120));
  EXPECT_EQ(finished, kApps);
  const std::uint64_t flushes = rig->adps()[0]->flushes();
  EXPECT_LT(flushes, static_cast<std::uint64_t>(kApps * kTxns))
      << "group commit must batch concurrent commit flushes";
  EXPECT_GT(flushes, 0u);
}

TEST_F(TmfAdpFixture, LsnsContinueAcrossFailover) {
  Start(true);
  RunApp([&](App& self) -> Task<void> {
    TxnClient client(self, rig->catalog());
    for (int i = 0; i < 3; ++i) {
      auto txn = co_await client.Begin();
      EXPECT_TRUE((co_await client.Insert(
                       *txn, 0, static_cast<std::uint64_t>(i),
                       std::vector<std::byte>(64, std::byte{1})))
                      .ok());
      EXPECT_TRUE((co_await client.Commit(*txn)).ok());
    }
  });
  const std::uint64_t lsn_before = rig->adps()[0]->next_lsn();
  ASSERT_GT(lsn_before, 1u);
  auto* backup = static_cast<AdpProcess*>(rig->adps()[0]->peer());
  ASSERT_NE(backup, nullptr);
  rig->KillAdpPrimary(0);
  sim->RunFor(Seconds(2));
  ASSERT_TRUE(backup->is_primary());
  EXPECT_GE(backup->next_lsn(), lsn_before)
      << "the promoted backup must not reissue LSNs";
}

TEST_F(TmfAdpFixture, FlushLatencyMatchesMedium) {
  for (bool pm : {false, true}) {
    Start(pm);
    RunApp([&](App& self) -> Task<void> {
      TxnClient client(self, rig->catalog());
      for (int i = 0; i < 5; ++i) {
        auto txn = co_await client.Begin();
        EXPECT_TRUE((co_await client.Insert(
                         *txn, 0, static_cast<std::uint64_t>(i),
                         std::vector<std::byte>(1024, std::byte{1})))
                        .ok());
        EXPECT_TRUE((co_await client.Commit(*txn)).ok());
      }
    });
    double mean_us = 0;
    std::uint64_t n = 0;
    for (auto* adp : rig->adps()) {
      mean_us += adp->flush_latency().mean() *
                 static_cast<double>(adp->flush_latency().count());
      n += adp->flush_latency().count();
    }
    ASSERT_GT(n, 0u);
    mean_us = mean_us / static_cast<double>(n) / 1e3;
    if (pm) {
      EXPECT_LT(mean_us, 500.0) << "PM flush must be sub-millisecond";
    } else {
      EXPECT_GT(mean_us, 2000.0) << "disk flush pays rotational latency";
    }
  }
}

// ------------------------------------------------- torn-write durability

// A length/payload/crc frame exactly as the audit path lays them down.
std::vector<std::byte> MakeFrame(std::size_t payload_len, std::uint8_t fill) {
  std::vector<std::byte> payload(payload_len, static_cast<std::byte>(fill));
  Serializer s;
  s.PutU32(static_cast<std::uint32_t>(payload.size()));
  std::vector<std::byte> out = std::move(s).Take();
  out.insert(out.end(), payload.begin(), payload.end());
  Serializer c;
  c.PutU32(Crc32c(payload));
  std::vector<std::byte> crc = std::move(c).Take();
  out.insert(out.end(), crc.begin(), crc.end());
  return out;
}

TEST(PmLogTornWrite, ControlBlockNeverDurableBeforeItsData) {
  // The §3.4 invariant under the piggybacked path: the control block rides
  // the SAME chained RDMA op as the data, and the chain aborts all later
  // segments when a packet fails its CRC check. Inject per-packet
  // corruption until an append tears mid-chain, then "power fail" (drop
  // all volatile state) and recover from the raw region: every byte the
  // durable tail covers must be a whole, valid frame.
  sim::Simulation sim(23);
  nsk::ClusterConfig ccfg;
  ccfg.num_cpus = 4;
  nsk::Cluster cluster(sim, ccfg);
  pm::Npmu npmu_a(cluster.fabric(), "npmu-a");
  pm::Npmu npmu_b(cluster.fabric(), "npmu-b");
  auto& pmm_p = sim.AdoptStopped<pm::PmManager>(
      cluster, 0, "$PMM", "$PMM-P", pm::PmDevice(npmu_a), pm::PmDevice(npmu_b),
      "$PM1");
  auto& pmm_b = sim.AdoptStopped<pm::PmManager>(
      cluster, 1, "$PMM", "$PMM-B", pm::PmDevice(npmu_a), pm::PmDevice(npmu_b),
      "$PM1");
  pmm_p.SetPeer(&pmm_b);
  pmm_b.SetPeer(&pmm_p);
  pmm_p.Start();
  pmm_b.Start();

  std::uint64_t acked = 0;  // bytes of appends acknowledged durable
  bool torn = false;
  sim.Adopt<App>(cluster, 2, "writer", [&](App& self) -> Task<void> {
    PmLogConfig cfg;
    cfg.region_name = "torn-log";
    cfg.region_bytes = 1ull << 20;
    PmLogDevice dev(cfg);
    EXPECT_TRUE((co_await dev.Open(self)).ok());
    // Each ~600B frame is several packets (data + piggybacked control);
    // a corrupted packet anywhere tears the chain at that point.
    cluster.fabric().SetCorruptionRate(0.04);
    for (int i = 0; i < 400 && !torn; ++i) {
      std::vector<std::byte> frame =
          MakeFrame(600, static_cast<std::uint8_t>(i + 1));
      const std::uint64_t n = frame.size();
      auto st = co_await dev.Append(self, std::move(frame));
      if (st.ok()) {
        acked += n;
      } else {
        torn = true;  // power fails at the torn write
      }
    }
    cluster.fabric().SetCorruptionRate(0);
  });
  sim.RunFor(Seconds(30));
  ASSERT_TRUE(torn) << "corruption never tore an append";
  ASSERT_GT(acked, 0u);

  // Power loss: the writer's tail and pipeline are volatile and gone. A
  // fresh device instance recovers purely from the durable control block
  // and ring contents.
  std::vector<std::byte> img;
  bool recovered = false;
  sim.Adopt<App>(cluster, 3, "recover", [&](App& self) -> Task<void> {
    PmLogConfig cfg;
    cfg.region_name = "torn-log";
    cfg.region_bytes = 1ull << 20;
    PmLogDevice dev(cfg);
    auto log = co_await dev.RecoverLog(self);
    EXPECT_TRUE(log.ok()) << log.status().ToString();
    if (log.ok()) {
      img = std::move(*log);
      recovered = true;
    }
  });
  sim.RunFor(Seconds(30));
  ASSERT_TRUE(recovered);
  // The invariant: the tail pointer is never durable before the data it
  // covers — the recovered prefix parses as whole valid frames, and no
  // acknowledged append is missing.
  EXPECT_EQ(ValidFramePrefix(img), img.size())
      << "durable tail covers bytes that never validly landed";
  EXPECT_GE(img.size(), acked) << "an acknowledged append was lost";
}

}  // namespace
}  // namespace ods::tp

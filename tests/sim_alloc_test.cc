// Allocation regression tests for the event engine and the fabric.
//
// The engine rebuild's core claim is that the steady-state hot path is
// allocation-free: event records come from the arena, coroutine frames
// and future state from the frame pool, guarded waits from the wait
// pool, and calendar bucket buffers circulate. These tests pin that
// claim with a counting operator new, so a regression that reintroduces
// per-event or per-packet heap traffic fails loudly instead of showing
// up as a quiet throughput loss.
//
// Methodology: run one warmup pass to populate every pool/arena/buffer
// to its steady-state capacity, then run an identical pass and assert
// the global allocation counter did not move. EXPECTs stay outside the
// measured window (gtest allocates on failure paths).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "net/fabric.h"
#include "sim/simulation.h"
#include "sim/wait_state.h"

namespace {

// Counting global operator new/delete. Only the count matters; the
// allocations themselves are forwarded to malloc/free.
std::uint64_t g_allocs = 0;

}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ods::sim {
namespace {

// One fill+drain cycle of the shapes the engine hot path serves: spread
// singleton-timestamp events, same-time bursts via ScheduleNow, and
// guarded timers that are claimed before expiry.
void DispatchCycle(Simulation& sim, int depth) {
  volatile std::uint64_t sink = 0;
  const std::int64_t base = sim.Now().ns + 1;
  for (int i = 0; i < depth; ++i) {
    sim.Schedule(SimTime{base + i * 97}, [&sim, &sink] {
      sink = sink + 1;
      sim.ScheduleNow([&sink] { sink = sink + 1; });
    });
  }
  sim.Run();
}

void TimerCycle(Simulation& sim, int ops) {
  for (int i = 0; i < ops; ++i) {
    WaitState* st = sim.wait_pool().Acquire();
    sim.ScheduleTimer(sim.Now() + Milliseconds(1), st,
                      WaitState::Why::kTimeout);
    ASSERT_TRUE(st->TryFire(WaitState::Why::kFulfilled));
    sim.wait_pool().Release(st);
  }
  sim.Run();
}

TEST(AllocTest, SteadyStateDispatchIsAllocationFree) {
  Simulation sim;
  // Warm up until a full cycle allocates nothing. Calendar bucket
  // buffers circulate and their capacity high-water is phase-dependent
  // (each cycle's fill lands at a different alignment against the
  // 128ns bucket grid), so convergence takes a handful of cycles — but
  // it must converge: capacity only accumulates.
  int warm = 0;
  for (; warm < 64; ++warm) {
    const std::uint64_t before = g_allocs;
    DispatchCycle(sim, 4096);
    if (g_allocs == before) break;
  }
  ASSERT_LT(warm, 64) << "dispatch never reached an allocation-free cycle";
  // The fixed point is stable: further cycles stay allocation-free.
  const std::uint64_t before = g_allocs;
  DispatchCycle(sim, 4096);
  DispatchCycle(sim, 4096);
  const std::uint64_t delta = g_allocs - before;
  EXPECT_EQ(delta, 0u) << "steady-state event dispatch allocated";
}

TEST(AllocTest, SteadyStateTimerChurnIsAllocationFree) {
  Simulation sim;
  TimerCycle(sim, 4096);  // warmup: grows wait pool + arena
  const std::uint64_t before = g_allocs;
  TimerCycle(sim, 4096);
  const std::uint64_t delta = g_allocs - before;
  EXPECT_EQ(delta, 0u) << "steady-state timer arm/claim allocated";
}

TEST(AllocTest, FabricWriteAllocsDoNotScaleWithPacketCount) {
  // A 64 KiB write is 128 MTU-sized packets; the batched delivery path
  // must post O(1) events and allocations per *transfer*, not per
  // packet. (The seed engine scheduled one std::function event per
  // packet: 128 packets meant hundreds of allocations.)
  Simulation sim;
  net::Fabric fabric(sim, net::FabricConfig{});
  net::Endpoint& host = fabric.CreateEndpoint("host");
  net::Endpoint& npmu = fabric.CreateEndpoint("npmu");
  std::vector<std::byte> device(1 << 20);
  net::AttWindow win;
  win.nva_base = 0;
  win.length = device.size();
  win.memory = device.data();
  ASSERT_TRUE(npmu.MapWindow(std::move(win)).ok());

  auto run_write = [&](std::size_t bytes) {
    std::vector<std::byte> data(bytes, std::byte{0x5A});
    const std::uint64_t before = g_allocs;
    auto fut = host.StartWrite(npmu.id(), 0, std::move(data));
    sim.Run();
    return g_allocs - before;
  };
  (void)run_write(1 << 16);  // warmup: pools, link bookkeeping
  const std::uint64_t small = run_write(512);      // 1 packet
  const std::uint64_t large = run_write(1 << 16);  // 128 packets
  // Both transfers should cost the same small constant; a per-packet
  // event or allocation would make `large` ~128x `small`.
  EXPECT_LE(large, small + 8) << "fabric allocs scale with packet count";
  EXPECT_LT(large, 32u);
}

}  // namespace
}  // namespace ods::sim

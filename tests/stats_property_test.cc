// Property tests for the log-bucketed LatencyHistogram (common/stats.h).
//
// The histogram promises three things the observability layer leans on:
//   * Percentile(q) brackets the exact q-quantile sample from above with
//     at most one sub-bucket of relative error (16 linear sub-buckets
//     per octave => a bucket's upper bound is <= 17/16 of any sample in
//     it, i.e. ~6.25%);
//   * Merge is exactly equivalent to having recorded the union of the
//     two sample streams (bucket counts are additive and min/sum/max
//     combine losslessly);
//   * merging with an empty histogram is the identity, including the
//     min()/max() edge cases around the empty sentinel.
#include "common/stats.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace ods {
namespace {

// Log-uniform samples spanning sub-bucket-exact values (< 16) up to the
// multi-millisecond range, so every bucketing regime is exercised.
std::vector<std::uint64_t> LogUniformSamples(std::uint32_t seed,
                                             std::size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& s : v) {
    const int shift = static_cast<int>(rng() % 33);  // [0, 32]
    s = rng() % ((1ull << shift) + 1);
  }
  return v;
}

// The exact quantile with the same rank convention Percentile uses.
std::uint64_t ExactQuantile(const std::vector<std::uint64_t>& sorted,
                            double q) {
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[static_cast<std::size_t>(rank)];
}

TEST(LatencyHistogramProperty, PercentileBracketsExactQuantile) {
  for (std::uint32_t seed : {1u, 7u, 42u, 1234u}) {
    auto samples = LogUniformSamples(seed, 5000);
    LatencyHistogram h;
    for (std::uint64_t s : samples) h.Record(s);
    std::sort(samples.begin(), samples.end());
    for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
      const std::uint64_t exact = ExactQuantile(samples, q);
      const std::uint64_t got = h.Percentile(q);
      // Never an underestimate...
      EXPECT_GE(got, exact) << "seed " << seed << " q " << q;
      // ...and at most one sub-bucket (1/16) of relative overestimate.
      EXPECT_LE(got, exact + (exact >> 4) + 1)
          << "seed " << seed << " q " << q;
      // Clamped into the observed range.
      EXPECT_LE(got, h.max());
    }
  }
}

TEST(LatencyHistogramProperty, PercentileExactBelowSixteen) {
  // Values below 2^4 are their own buckets: percentiles are exact.
  LatencyHistogram h;
  std::vector<std::uint64_t> samples;
  std::mt19937_64 rng(99);
  for (int i = 0; i < 2000; ++i) {
    samples.push_back(rng() % 16);
    h.Record(samples.back());
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.0, 0.3, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(h.Percentile(q), ExactQuantile(samples, q)) << "q " << q;
  }
}

TEST(LatencyHistogramProperty, MergeEquivalentToUnionRecording) {
  for (std::uint32_t seed : {3u, 17u, 271u}) {
    const auto a = LogUniformSamples(seed, 3000);
    const auto b = LogUniformSamples(seed + 1, 1700);

    LatencyHistogram ha, hb, hu;
    for (std::uint64_t s : a) {
      ha.Record(s);
      hu.Record(s);
    }
    for (std::uint64_t s : b) {
      hb.Record(s);
      hu.Record(s);
    }
    ha.Merge(hb);

    EXPECT_EQ(ha.count(), hu.count());
    EXPECT_EQ(ha.min(), hu.min());
    EXPECT_EQ(ha.max(), hu.max());
    EXPECT_DOUBLE_EQ(ha.mean(), hu.mean());
    // Bucket counts are additive, so EVERY percentile agrees exactly.
    for (int i = 0; i <= 1000; ++i) {
      const double q = static_cast<double>(i) / 1000.0;
      ASSERT_EQ(ha.Percentile(q), hu.Percentile(q))
          << "seed " << seed << " q " << q;
    }
  }
}

TEST(LatencyHistogramProperty, MergeWithEmptyIsIdentity) {
  LatencyHistogram h;
  for (std::uint64_t s : {100ull, 5ull, 90000ull}) h.Record(s);
  const std::uint64_t min_before = h.min();
  const std::uint64_t max_before = h.max();
  const std::uint64_t count_before = h.count();
  const double mean_before = h.mean();

  LatencyHistogram empty;
  h.Merge(empty);
  EXPECT_EQ(h.min(), min_before);  // empty sentinel must not clobber min
  EXPECT_EQ(h.max(), max_before);
  EXPECT_EQ(h.count(), count_before);
  EXPECT_DOUBLE_EQ(h.mean(), mean_before);

  // Merging INTO an empty histogram adopts the other side wholesale.
  LatencyHistogram fresh;
  fresh.Merge(h);
  EXPECT_EQ(fresh.min(), min_before);
  EXPECT_EQ(fresh.max(), max_before);
  EXPECT_EQ(fresh.count(), count_before);
  EXPECT_EQ(fresh.Percentile(0.5), h.Percentile(0.5));
}

TEST(LatencyHistogramProperty, EmptyMergedWithEmptyStaysEmpty) {
  LatencyHistogram a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0u);  // min() hides the internal UINT64_MAX sentinel
  EXPECT_EQ(a.max(), 0u);
  EXPECT_EQ(a.Percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(LatencyHistogramProperty, RecordAfterResetMatchesFresh) {
  LatencyHistogram used;
  for (std::uint64_t s : LogUniformSamples(5, 500)) used.Record(s);
  used.Reset();
  LatencyHistogram fresh;
  for (std::uint64_t s : {77ull, 1234ull}) {
    used.Record(s);
    fresh.Record(s);
  }
  EXPECT_EQ(used.count(), fresh.count());
  EXPECT_EQ(used.min(), fresh.min());
  EXPECT_EQ(used.max(), fresh.max());
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(used.Percentile(q), fresh.Percentile(q));
  }
}

}  // namespace
}  // namespace ods

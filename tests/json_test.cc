// Unit tests for the observability primitives that everything else
// builds on: the JSON document model (common/json.h), the metrics
// registry (common/metrics.h), and the span tracer ring buffer
// (common/trace.h). Determinism and round-trip properties asserted here
// are what make the bench JSON and Chrome-trace exports diffable.
#include "common/json.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"

namespace ods {
namespace {

// ---------------------------------------------------------------- JsonValue

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape("nl\n"), "nl\\n");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  // UTF-8 passes through untouched.
  EXPECT_EQ(JsonEscape("µs"), "µs");
}

TEST(Json, NumberFormatting) {
  EXPECT_EQ(JsonNumber(0), "0");
  EXPECT_EQ(JsonNumber(42), "42");
  EXPECT_EQ(JsonNumber(-17), "-17");
  EXPECT_EQ(JsonNumber(1e15), "1000000000000000");  // integral within 2^53
  EXPECT_EQ(JsonNumber(0.5), "0.5");
}

TEST(Json, BuildsNestedDocuments) {
  JsonValue doc = JsonValue::Object();
  doc.Set("name", "bench \"quoted\"");
  doc.Set("count", std::uint64_t{12});
  JsonValue arr = JsonValue::Array();
  arr.Append(1);
  arr.Append(JsonValue::Object().Set("k", 2.5));
  doc.Set("rows", std::move(arr));

  const std::string compact = doc.Serialize();
  EXPECT_EQ(compact,
            "{\"name\":\"bench \\\"quoted\\\"\",\"count\":12,"
            "\"rows\":[1,{\"k\":2.5}]}");
}

TEST(Json, SetReplacesExistingKeyInPlace) {
  JsonValue doc = JsonValue::Object();
  doc.Set("a", 1);
  doc.Set("b", 2);
  doc.Set("a", 3);  // replace, preserving insertion order
  EXPECT_EQ(doc.Serialize(), "{\"a\":3,\"b\":2}");
  EXPECT_EQ(doc.size(), 2u);
}

TEST(Json, FindMutableAllowsNestedEdits) {
  JsonValue doc = JsonValue::Object();
  doc.Set("inner", JsonValue::Object());
  doc.FindMutable("inner")->Set("x", 9);
  const JsonValue* inner = doc.Find("inner");
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(inner->Find("x"), nullptr);
  EXPECT_EQ(inner->Find("x")->number(), 9.0);
  EXPECT_EQ(doc.FindMutable("absent"), nullptr);
}

TEST(Json, RoundTripsThroughParse) {
  JsonValue doc = JsonValue::Object();
  doc.Set("s", "esc\"\\\n\t");
  doc.Set("n", 3.25);
  doc.Set("i", std::uint64_t{123456789});
  doc.Set("t", true);
  doc.Set("nul", JsonValue());
  JsonValue arr = JsonValue::Array();
  for (int i = 0; i < 4; ++i) arr.Append(i * 10);
  doc.Set("a", std::move(arr));
  JsonValue nested = JsonValue::Object();
  nested.Set("deep", JsonValue::Object().Set("x", -1));
  doc.Set("o", std::move(nested));

  for (int indent : {-1, 2}) {
    const std::string text = doc.Serialize(indent);
    auto parsed = JsonValue::Parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    // Canonical comparison: re-serializing the parse yields identical
    // bytes (ordering is insertion order, numbers reformat identically).
    EXPECT_EQ(parsed->Serialize(indent), text);
  }
}

TEST(Json, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("").has_value());
  EXPECT_FALSE(JsonValue::Parse("{").has_value());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").has_value());
  EXPECT_FALSE(JsonValue::Parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").has_value());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::Parse("nulll").has_value());
}

TEST(Json, ParseHandlesUnicodeEscapes) {
  auto v = JsonValue::Parse("\"a\\u00b5b\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->str(), "aµb");
}

// ---------------------------------------------------------- MetricsRegistry

TEST(Metrics, CountersAndHistogramsAreStableReferences) {
  MetricsRegistry m;
  Counter& a = m.GetCounter("a.ops");
  // Creating more entries must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) {
    m.GetCounter("filler." + std::to_string(i));
  }
  a.Add(7);
  EXPECT_EQ(m.GetCounter("a.ops").value(), 7u);
  EXPECT_EQ(m.counter_count(), 101u);

  LatencyHistogram& h = m.GetHistogram("a.lat");
  h.Record(1000);
  EXPECT_EQ(m.GetHistogram("a.lat").count(), 1u);
  EXPECT_NE(m.FindCounter("a.ops"), nullptr);
  EXPECT_EQ(m.FindCounter("absent"), nullptr);
}

TEST(Metrics, SnapshotIsSortedAndParseable) {
  MetricsRegistry m;
  m.GetCounter("z.last").Increment();
  m.GetCounter("a.first").Add(5);
  m.GetHistogram("mid.lat").Record(2048);

  JsonValue snap = m.Snapshot();
  const std::string text = snap.Serialize(2);
  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  // std::map iteration: exported in name order regardless of creation
  // order — the byte-determinism contract.
  ASSERT_EQ(counters->members().size(), 2u);
  EXPECT_EQ(counters->members()[0].first, "a.first");
  EXPECT_EQ(counters->members()[1].first, "z.last");
  EXPECT_EQ(counters->members()[0].second.number(), 5.0);

  const JsonValue* hists = parsed->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* lat = hists->Find("mid.lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Find("count")->number(), 1.0);
  EXPECT_GE(lat->Find("p99_ns")->number(), 2048.0);
}

TEST(Metrics, ResetClearsValuesButKeepsNames) {
  MetricsRegistry m;
  Counter& c = m.GetCounter("x");
  c.Add(3);
  m.GetHistogram("y").Record(10);
  m.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(m.GetHistogram("y").count(), 0u);
  EXPECT_EQ(m.counter_count(), 1u);
}

// ------------------------------------------------------------------ Tracer

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.Complete(TraceLane::kFabric, "op", 0, 10);
  t.Instant(TraceLane::kAdp, "i", 5);
  t.AsyncBegin(TraceLane::kTmf, "a", 0, 1);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  Tracer t;
  t.Enable(/*capacity=*/4);
  for (std::int64_t i = 0; i < 10; ++i) {
    t.Complete(TraceLane::kFabric, "ev", i, i + 1);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // Oldest-first iteration yields the most recent window in order.
  std::int64_t expect_ts = 6;
  t.ForEach([&](const TraceEvent& ev) { EXPECT_EQ(ev.ts_ns, expect_ts++); });
  EXPECT_EQ(expect_ts, 10);
}

TEST(Tracer, ExactlyFullRingDropsNothing) {
  Tracer t;
  t.Enable(4);
  for (std::int64_t i = 0; i < 4; ++i) {
    t.Instant(TraceLane::kAdp, "i", i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, ClearKeepsCapacityAndEnables) {
  Tracer t;
  t.Enable(8);
  t.Instant(TraceLane::kAdp, "i", 1);
  t.Clear();
  EXPECT_TRUE(t.enabled());
  EXPECT_EQ(t.size(), 0u);
  t.Instant(TraceLane::kAdp, "i", 2);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Tracer, ChromeJsonIsValidAndCarriesLaneMetadata) {
  Tracer t;
  t.Enable(16);
  t.Complete(TraceLane::kFabric, "rdma.write", 1000, 3500, 42, "bytes", 4096,
             "rail", 1);
  t.AsyncBegin(TraceLane::kTmf, "txn.commit", 1000, 42);
  t.AsyncEnd(TraceLane::kTmf, "txn.commit", 9000, 42);
  t.Instant(TraceLane::kPmClient, "pm.pipeline_issue", 2500, 42, "depth", 3);

  const std::string json = t.ToChromeJson();
  auto doc = JsonValue::Parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int metadata = 0, complete = 0, async = 0, instant = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    const std::string& ph = e.Find("ph")->str();
    if (ph == "M") ++metadata;
    if (ph == "X") {
      ++complete;
      // ts/dur are microseconds: 1000ns -> "1.000", 2500ns dur -> 2.5us.
      EXPECT_DOUBLE_EQ(e.Find("ts")->number(), 1.0);
      EXPECT_DOUBLE_EQ(e.Find("dur")->number(), 2.5);
      EXPECT_EQ(e.Find("args")->Find("bytes")->number(), 4096.0);
      EXPECT_EQ(e.Find("args")->Find("op")->number(), 42.0);
    }
    if (ph == "b" || ph == "e") {
      ++async;
      // Async events need cat + id for Perfetto to join them.
      ASSERT_NE(e.Find("cat"), nullptr);
      ASSERT_NE(e.Find("id"), nullptr);
    }
    if (ph == "i") ++instant;
  }
  EXPECT_GE(metadata, 7);  // process_name + 6 lane names
  EXPECT_EQ(complete, 1);
  EXPECT_EQ(async, 2);
  EXPECT_EQ(instant, 1);
}

TEST(Tracer, IdenticalEventSequencesExportIdenticalBytes) {
  auto run = [] {
    Tracer t;
    t.Enable(32);
    for (int i = 0; i < 20; ++i) {
      t.Complete(TraceLane::kAdp, "adp.flush_io", i * 100, i * 100 + 50,
                 static_cast<std::uint64_t>(i), "bytes", 512);
    }
    return t.ToChromeJson();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ods

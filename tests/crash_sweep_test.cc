// Crash-point sweep over the PM control plane (workload/crash_rig.h).
//
// A record pass enumerates every fault-injection site the canonical
// scenario reaches; sweep passes re-run it with a crash armed at one
// site and assert the recovery invariants I1-I4. The full every-index
// sweep lives in bench/crash_sweep.cc; here a deterministic stride keeps
// the runtime test-sized while still covering every phase of the
// scenario for every crash mode.
#include "workload/crash_rig.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace ods::workload {
namespace {

constexpr std::uint64_t kSeed = 11;

std::string TraceToString(const std::vector<sim::FaultSite>& trace) {
  std::string out;
  for (const auto& s : trace) {
    out += s.ToString();
    out += '\n';
  }
  return out;
}

TEST(CrashSweep, RecordPassHoldsInvariants) {
  CrashRunResult r = RunCrashScenario(kSeed, CrashMode::kNone, std::nullopt);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.violations, std::vector<std::string>{})
      << TraceToString(r.trace);
  // The scenario must give the sweep real coverage: the issue floor is
  // 30 distinct sites.
  EXPECT_GE(r.trace.size(), 30u) << TraceToString(r.trace);
  EXPECT_GE(r.regions_checked, 3u);
  EXPECT_FALSE(r.fired_at.has_value());
}

TEST(CrashSweep, RecordPassIsDeterministic) {
  CrashRunResult a = RunCrashScenario(kSeed, CrashMode::kNone, std::nullopt);
  CrashRunResult b = RunCrashScenario(kSeed, CrashMode::kNone, std::nullopt);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.trace, b.trace);
}

TEST(CrashSweep, SitesCoverAllInstrumentedLayers) {
  CrashRunResult r = RunCrashScenario(kSeed, CrashMode::kNone, std::nullopt);
  std::set<sim::FaultSiteKind> kinds;
  std::set<std::string> labels;
  for (const auto& s : r.trace) {
    kinds.insert(s.kind);
    labels.insert(s.label);
  }
  EXPECT_TRUE(kinds.count(sim::FaultSiteKind::kRdmaWriteComplete));
  EXPECT_TRUE(kinds.count(sim::FaultSiteKind::kCommitPoint));
  EXPECT_TRUE(kinds.count(sim::FaultSiteKind::kResilverStep));
  // Every co_await boundary of the commit protocol shows up.
  EXPECT_TRUE(labels.count("commit:begin"));
  EXPECT_TRUE(labels.count("commit:pre-primary-write"));
  EXPECT_TRUE(labels.count("commit:pre-mirror-write"));
  EXPECT_TRUE(labels.count("commit:post-writes"));
  EXPECT_TRUE(labels.count("resilver:begin"));
  EXPECT_TRUE(labels.count("resilver:metadata-clone"));
  EXPECT_TRUE(labels.count("resilver:commit"));
}

// One sweep pass: crash `mode` at site `index`, assert every invariant.
void SweepAt(CrashMode mode, std::size_t index,
             const std::vector<sim::FaultSite>& record) {
  CrashRunResult r = RunCrashScenario(kSeed, mode, index);
  SCOPED_TRACE(std::string(CrashModeName(mode)) + " @ site " +
               std::to_string(index) + " (" + record[index].ToString() + ")");
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.violations, std::vector<std::string>{});
  // Determinism of the sweep pass itself: the pre-crash prefix replays
  // the record trace exactly, so the armed site fires where it was armed.
  ASSERT_TRUE(r.fired_at.has_value());
  EXPECT_EQ(*r.fired_at, index);
  for (std::size_t i = 0; i <= index && i < r.trace.size(); ++i) {
    ASSERT_EQ(r.trace[i], record[i]) << "prefix diverged at site " << i;
  }
}

class CrashSweepModes : public ::testing::TestWithParam<CrashMode> {};

TEST_P(CrashSweepModes, StridedSweepHoldsInvariants) {
  CrashRunResult record = RunCrashScenario(kSeed, CrashMode::kNone,
                                           std::nullopt);
  ASSERT_GE(record.trace.size(), 30u);
  // Deterministic stride: same indices every run. The offset varies per
  // mode so the union across modes covers more distinct sites.
  const std::size_t stride = 7;
  const std::size_t offset =
      static_cast<std::size_t>(GetParam()) % stride;
  for (std::size_t i = offset; i < record.trace.size(); i += stride) {
    SweepAt(GetParam(), i, record.trace);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, CrashSweepModes,
    ::testing::ValuesIn(SweepableCrashModes()),
    [](const ::testing::TestParamInfo<CrashMode>& param) {
      std::string name = CrashModeName(param.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ods::workload

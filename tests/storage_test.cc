// Tests for the disk model: latency structure (the paper's baseline),
// FIFO arm queueing, sequential-vs-random positioning, mirroring, power
// failure semantics.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/process.h"
#include "sim/simulation.h"
#include "storage/disk.h"

namespace ods::storage {
namespace {

using sim::Microseconds;
using sim::Milliseconds;
using sim::SimTime;
using sim::Task;

class LambdaProcess : public sim::Process {
 public:
  using Body = std::function<Task<void>(LambdaProcess&)>;
  LambdaProcess(sim::Simulation& sim, std::string name, Body body)
      : Process(sim, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

std::vector<std::byte> Fill(std::size_t n, std::uint8_t v) {
  return std::vector<std::byte>(n, static_cast<std::byte>(v));
}

TEST(DiskTest, WriteThenReadBack) {
  sim::Simulation sim;
  DiskVolume disk(sim, "d0");
  Result<std::vector<std::byte>> got(Status(ErrorCode::kInternal, "unset"));
  sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    EXPECT_TRUE((co_await disk.Write(self, 4096, Fill(1024, 0xCD))).ok());
    got = co_await disk.Read(self, 4096, 1024);
  });
  sim.Run();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 1024u);
  EXPECT_EQ((*got)[0], std::byte{0xCD});
}

TEST(DiskTest, RandomWriteIsMillisecondClass) {
  // §3.2: the storage stack costs "100s of microseconds — usually
  // milliseconds". A random 4K write must land in that band.
  sim::Simulation sim;
  DiskVolume disk(sim, "d0");
  SimTime done{};
  sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    (void)co_await disk.Write(self, 10 << 20, Fill(4096, 1));
    done = self.sim().Now();
  });
  sim.Run();
  EXPECT_GT(done.ns, Milliseconds(1).ns);
  EXPECT_LT(done.ns, Milliseconds(20).ns);
}

TEST(DiskTest, SequentialAppendsMuchCheaperThanRandom) {
  sim::Simulation sim;
  DiskVolume disk(sim, "d0");
  // First op positions the head; subsequent appends continue from there.
  const auto t_random = disk.ServiceTime(50 << 20, 4096);
  Result<std::vector<std::byte>> unused(Status(ErrorCode::kInternal, "x"));
  (void)unused;
  sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    (void)co_await disk.Write(self, 0, Fill(4096, 1));
    co_return;
  });
  sim.Run();
  const auto t_seq = disk.ServiceTime(4096, 4096);  // continues at head
  EXPECT_GT(t_random.ns, t_seq.ns * 5);
}

TEST(DiskTest, FifoQueueingSerializesRequests) {
  sim::Simulation sim;
  DiskVolume disk(sim, "d0");
  SimTime t1{}, t2{};
  // Both ops are random (offsets differ from the head position), so each
  // costs a full positioning; the second must additionally queue behind
  // the first on the single arm.
  sim.Spawn<LambdaProcess>("a", [&](LambdaProcess& self) -> Task<void> {
    (void)co_await disk.Write(self, 50 << 20, Fill(4096, 1));
    t1 = self.sim().Now();
  });
  sim.Spawn<LambdaProcess>("b", [&](LambdaProcess& self) -> Task<void> {
    (void)co_await disk.Write(self, 100 << 20, Fill(4096, 2));
    t2 = self.sim().Now();
  });
  sim.Run();
  EXPECT_GE((t2 - SimTime{0}).ns, 2 * disk.config().random_positioning.ns);
  EXPECT_NE(t1, t2);
}

TEST(DiskTest, OutOfRangeRejected) {
  sim::Simulation sim;
  DiskConfig cfg;
  cfg.capacity_bytes = 1 << 20;
  DiskVolume disk(sim, "d0", cfg);
  Status st;
  sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    st = co_await disk.Write(self, (1 << 20) - 100, Fill(4096, 1));
  });
  sim.Run();
  EXPECT_EQ(st.code(), ErrorCode::kOutOfRange);
}

TEST(DiskTest, AccountingTracksTraffic) {
  sim::Simulation sim;
  DiskVolume disk(sim, "d0");
  sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    (void)co_await disk.Write(self, 0, Fill(1000, 1));
    (void)co_await disk.Write(self, 1000, Fill(500, 2));
    (void)co_await disk.Read(self, 0, 1500);
  });
  sim.Run();
  EXPECT_EQ(disk.writes(), 2u);
  EXPECT_EQ(disk.reads(), 1u);
  EXPECT_EQ(disk.bytes_written(), 1500u);
  EXPECT_EQ(disk.bytes_read(), 1500u);
  EXPECT_GT(disk.busy_time().ns, 0);
}

TEST(DiskTest, PowerFailDropsInflightKeepsLanded) {
  sim::Simulation sim;
  DiskVolume disk(sim, "d0");
  sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    // Random write: ~5.3ms to land.
    (void)co_await disk.Write(self, 4096, Fill(512, 0xAA));
    // Issue and do NOT await: sequential, ~0.5ms more — in flight when
    // power fails at 5.5ms.
    (void)disk.StartWrite(4096 + 512, Fill(512, 0xBB));
    co_return;
  });
  sim.RunUntil(SimTime{Microseconds(5500).ns});
  disk.PowerFail();
  sim.Run();
  EXPECT_EQ(disk.ReadImage(4096, 1)[0], std::byte{0xAA}) << "landed data survives";
  EXPECT_EQ(disk.ReadImage(4096 + 512, 1)[0], std::byte{0}) << "in-flight write lost";
}

TEST(MirroredTest, WriteGoesToBoth) {
  sim::Simulation sim;
  DiskVolume a(sim, "a"), b(sim, "b");
  MirroredVolume mv(a, b);
  sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    EXPECT_TRUE((co_await mv.Write(self, 0, Fill(256, 0x7E))).ok());
  });
  sim.Run();
  EXPECT_EQ(a.ReadImage(0, 1)[0], std::byte{0x7E});
  EXPECT_EQ(b.ReadImage(0, 1)[0], std::byte{0x7E});
}

// Latency calibration: these values anchor the E2/E4 shape, so pin them.
TEST(DiskCalibration, FourKRandomWriteAround5to6Ms) {
  sim::Simulation sim;
  DiskVolume disk(sim, "d0");
  const auto t = disk.ServiceTime(32 << 20, 4096);
  EXPECT_GT(sim::ToMillisD(t), 4.0);
  EXPECT_LT(sim::ToMillisD(t), 8.0);
}

TEST(DiskCalibration, SequentialBandwidthDominatesLargeWrites) {
  sim::Simulation sim;
  DiskVolume disk(sim, "d0");
  // 1MB sequential: ~20ms transfer at 50MB/s + sub-ms overheads.
  const auto t = disk.ServiceTime(0, 1 << 20);
  EXPECT_GT(sim::ToMillisD(t), 15.0);
  EXPECT_LT(sim::ToMillisD(t), 40.0);
}

}  // namespace
}  // namespace ods::storage

// Property suite for tp::LockManager (strict 2PL, FIFO queue, timeout
// deadlock-breaking) under randomized schedules, plus deterministic
// regression tests for three slow-path bugs the randomized runs exposed:
//
//   * lost wakeup — a waiter that timed out at the head of the queue
//     left grantable waiters behind it wedged until the next release;
//   * grant/timeout race — a grant landing in the same instant as the
//     waiter's timeout produced a "zombie" grant: the acquirer returned
//     kTimedOut while the manager recorded it as a holder;
//   * duplicate held_by_txn_ entry on a queued upgrade grant.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "tp/lock.h"

namespace ods::tp {
namespace {

using sim::Milliseconds;
using sim::Seconds;
using sim::SimTime;
using sim::Task;

struct LockFixture : ::testing::Test {
  LockFixture() : sim(17), mgr(sim) {}
  sim::Simulation sim;
  LockManager mgr;

  template <typename Body>
  void Run(Body body) {
    struct P : sim::Process {
      Body body;
      P(sim::Simulation& s, Body b) : Process(s, "p"), body(std::move(b)) {}
      Task<void> Main() override { return body(*this); }
    };
    sim.Spawn<P>(std::move(body));
    sim.Run();
  }
};

// ---------------------------------------------------------------------------
// Randomized schedules: a shadow lock table checks the exclusion
// invariant at every successful grant, and termination checks there are
// no lost wakeups (every fiber either commits or times out — nobody
// waits forever on a grantable lock).

struct ShadowTable {
  // key -> holders, mirrored by the test fibers around Acquire/ReleaseAll.
  std::map<LockKey, std::map<std::uint64_t, LockMode>> held;

  void CheckCompatible(LockKey key, std::uint64_t txn, LockMode mode) {
    for (const auto& [other, other_mode] : held[key]) {
      if (other == txn) continue;
      EXPECT_FALSE(mode == LockMode::kExclusive ||
                   other_mode == LockMode::kExclusive)
          << "exclusion violated on {" << key.file << "," << key.key
          << "}: txn " << txn << " granted "
          << (mode == LockMode::kExclusive ? "X" : "S") << " while txn "
          << other << " holds "
          << (other_mode == LockMode::kExclusive ? "X" : "S");
    }
  }
  void Grant(LockKey key, std::uint64_t txn, LockMode mode) {
    auto& mode_held = held[key][txn];
    // Upgrade sticks; re-entrant shared under exclusive does not downgrade.
    if (mode == LockMode::kExclusive) mode_held = LockMode::kExclusive;
    else if (held[key].find(txn) == held[key].end())
      mode_held = LockMode::kShared;
  }
  void Release(std::uint64_t txn) {
    for (auto& [key, holders] : held) holders.erase(txn);
  }
};

TEST_F(LockFixture, RandomizedSchedulesHoldInvariants) {
  // Several seeds; each spawns a crowd of transactions doing random
  // lock sequences over a tiny hot keyspace with mixed modes, random
  // think times and timeouts short enough that deadlocks break.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    sim::Simulation s(seed);
    LockManager m(s);
    ShadowTable shadow;
    int completed = 0;
    constexpr int kTxns = 10;
    constexpr int kKeys = 4;
    constexpr int kOpsPerTxn = 4;

    struct Txn : sim::Process {
      LockManager* m;
      ShadowTable* shadow;
      std::uint64_t txn, seed;
      int* completed;
      Txn(sim::Simulation& s, LockManager* m, ShadowTable* sh,
          std::uint64_t txn, std::uint64_t seed, int* completed)
          : Process(s, "txn"), m(m), shadow(sh), txn(txn), seed(seed),
            completed(completed) {}
      Task<void> Main() override {
        Rng rng = Rng::ForStream(seed, txn);
        co_await Sleep(Milliseconds(rng.Below(20)));
        bool aborted = false;
        for (int op = 0; op < kOpsPerTxn && !aborted; ++op) {
          const LockKey key{0, rng.Below(kKeys)};
          const LockMode mode =
              rng.Bernoulli(0.4) ? LockMode::kExclusive : LockMode::kShared;
          auto st = co_await m->Acquire(
              *this, txn, key, mode, Milliseconds(30 + rng.Below(40)));
          if (st.ok()) {
            shadow->CheckCompatible(key, txn, mode);
            shadow->Grant(key, txn, mode);
            co_await Sleep(Milliseconds(rng.Below(10)));
          } else {
            EXPECT_EQ(st.code(), ErrorCode::kTimedOut);
            aborted = true;  // strict 2PL: abort releases everything
          }
        }
        shadow->Release(txn);
        m->ReleaseAll(txn);
        ++*completed;
      }
    };
    for (std::uint64_t t = 1; t <= kTxns; ++t)
      s.Spawn<Txn>(&m, &shadow, t, seed, &completed);
    s.Run();

    // No lost wakeups: the sim ran out of events only because every
    // transaction resolved (nobody is parked on a grantable lock).
    EXPECT_EQ(completed, kTxns) << "seed " << seed;
    for (std::uint64_t t = 1; t <= kTxns; ++t) m.ReleaseAll(t);
    for (int k = 0; k < kKeys; ++k)
      EXPECT_FALSE(m.IsHeld({0, static_cast<std::uint64_t>(k)}))
          << "seed " << seed << " key " << k;
    EXPECT_GE(m.grants(), static_cast<std::uint64_t>(kTxns));
  }
}

TEST_F(LockFixture, FifoFairnessAmongExclusiveWaiters) {
  // 8 exclusive waiters arriving 1ms apart are granted in arrival order.
  std::vector<int> order;
  Run([&](sim::Process& self) -> Task<void> {
    EXPECT_TRUE((co_await mgr.Acquire(self, 1, {0, 7}, LockMode::kExclusive,
                                      Seconds(1))).ok());
    for (int i = 2; i <= 9; ++i) {
      self.SpawnFiber([](sim::Process& p, LockManager& m, int txn,
                         std::vector<int>& log) -> Task<void> {
        EXPECT_TRUE((co_await m.Acquire(p, static_cast<std::uint64_t>(txn),
                                        {0, 7}, LockMode::kExclusive,
                                        Seconds(30))).ok());
        log.push_back(txn);
        co_await p.Sleep(Milliseconds(2));
        m.ReleaseAll(static_cast<std::uint64_t>(txn));
      }(self, mgr, i, order));
      co_await self.Sleep(Milliseconds(1));
    }
    mgr.ReleaseAll(1);
  });
  EXPECT_EQ(order, (std::vector<int>{2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST_F(LockFixture, ConsecutiveSharedWaitersGrantTogether) {
  // X holder, then queue = [S, S, X, S]. On release the two lead shared
  // waiters are granted together; the trailing S waits behind the X
  // (FIFO prevents writer starvation).
  std::vector<std::pair<int, SimTime>> grants;
  Run([&](sim::Process& self) -> Task<void> {
    EXPECT_TRUE((co_await mgr.Acquire(self, 1, {0, 3}, LockMode::kExclusive,
                                      Seconds(1))).ok());
    auto waiter = [](sim::Process& p, LockManager& m, int txn, LockMode mode,
                     std::vector<std::pair<int, SimTime>>& log) -> Task<void> {
      EXPECT_TRUE((co_await m.Acquire(p, static_cast<std::uint64_t>(txn),
                                      {0, 3}, mode, Seconds(30))).ok());
      log.emplace_back(txn, p.sim().Now());
      co_await p.Sleep(Milliseconds(5));
      m.ReleaseAll(static_cast<std::uint64_t>(txn));
    };
    self.SpawnFiber(waiter(self, mgr, 2, LockMode::kShared, grants));
    co_await self.Sleep(Milliseconds(1));
    self.SpawnFiber(waiter(self, mgr, 3, LockMode::kShared, grants));
    co_await self.Sleep(Milliseconds(1));
    self.SpawnFiber(waiter(self, mgr, 4, LockMode::kExclusive, grants));
    co_await self.Sleep(Milliseconds(1));
    self.SpawnFiber(waiter(self, mgr, 5, LockMode::kShared, grants));
    co_await self.Sleep(Milliseconds(1));
    mgr.ReleaseAll(1);
  });
  ASSERT_EQ(grants.size(), 4u);
  EXPECT_EQ(grants[0].first, 2);
  EXPECT_EQ(grants[1].first, 3);
  EXPECT_EQ(grants[0].second.ns, grants[1].second.ns);  // granted together
  EXPECT_EQ(grants[2].first, 4);
  EXPECT_GT(grants[2].second.ns, grants[1].second.ns);
  EXPECT_EQ(grants[3].first, 5);
  EXPECT_GT(grants[3].second.ns, grants[2].second.ns);
}

// ---------------------------------------------------------------------------
// Regression: cancelled head must not wedge grantable waiters behind it.

TEST_F(LockFixture, TimedOutHeadDoesNotWedgeCompatibleWaiter) {
  // txn1 holds S. txn2 queues for X (blocked by the S holder). txn3
  // queues for S behind txn2 (FIFO: it must not jump the X waiter).
  // txn2 times out at 50ms. txn3 is compatible with txn1 the moment the
  // cancelled head is gone — it must be granted AT the timeout, not at
  // txn1's release half a second later.
  SimTime txn3_granted{};
  Run([&](sim::Process& self) -> Task<void> {
    EXPECT_TRUE((co_await mgr.Acquire(self, 1, {0, 5}, LockMode::kShared,
                                      Seconds(1))).ok());
    self.SpawnFiber([](sim::Process& p, LockManager& m) -> Task<void> {
      auto st = co_await m.Acquire(p, 2, {0, 5}, LockMode::kExclusive,
                                   Milliseconds(50));
      EXPECT_EQ(st.code(), ErrorCode::kTimedOut);
      m.ReleaseAll(2);
    }(self, mgr));
    co_await self.Sleep(Milliseconds(1));
    self.SpawnFiber([](sim::Process& p, LockManager& m,
                       SimTime& out) -> Task<void> {
      EXPECT_TRUE((co_await m.Acquire(p, 3, {0, 5}, LockMode::kShared,
                                      Seconds(10))).ok());
      out = p.sim().Now();
      m.ReleaseAll(3);
    }(self, mgr, txn3_granted));
    co_await self.Sleep(Milliseconds(500));
    mgr.ReleaseAll(1);
  });
  EXPECT_EQ(txn3_granted.ns, Milliseconds(50).ns)
      << "shared waiter was wedged behind the cancelled head";
}

// ---------------------------------------------------------------------------
// Regression: a grant landing in the same instant as the timeout must
// not produce a zombie holder.

TEST_F(LockFixture, GrantAtTimeoutInstantIsNotLost) {
  // txn1 releases at exactly the instant txn2's wait times out. Whatever
  // order the two events run in, the outcome must be coherent: either
  // txn2 got the lock (st.ok() and it is a holder) or it did not (and it
  // is NOT recorded as a holder once txn1 is gone).
  Status txn2_status(ErrorCode::kInternal, "unset");
  Run([&](sim::Process& self) -> Task<void> {
    EXPECT_TRUE((co_await mgr.Acquire(self, 1, {0, 8}, LockMode::kExclusive,
                                      Seconds(1))).ok());
    self.SpawnFiber([](sim::Process& p, LockManager& m,
                       Status& out) -> Task<void> {
      out = co_await m.Acquire(p, 2, {0, 8}, LockMode::kExclusive,
                               Milliseconds(100));
    }(self, mgr, txn2_status));
    co_await self.Sleep(Milliseconds(100));  // release in the same instant
    mgr.ReleaseAll(1);
  });
  if (txn2_status.ok()) {
    EXPECT_TRUE(mgr.IsHeld({0, 8}));
    mgr.ReleaseAll(2);
    EXPECT_FALSE(mgr.IsHeld({0, 8}));
  } else {
    // txn1 is gone and txn2 reported failure: nobody may hold the lock.
    EXPECT_FALSE(mgr.IsHeld({0, 8}))
        << "zombie grant: timeout reported but manager kept txn2 as holder";
  }
}

// ---------------------------------------------------------------------------
// Regression: queued upgrade grant must not duplicate held_by_txn_.

TEST_F(LockFixture, QueuedUpgradeReleasesCleanly) {
  // txn1 and txn2 hold S. txn1 queues an upgrade to X; txn2 releases;
  // the pump grants the upgrade. ReleaseAll(1) must fully release (a
  // duplicate held_by_txn_ entry used to survive it).
  Run([&](sim::Process& self) -> Task<void> {
    EXPECT_TRUE((co_await mgr.Acquire(self, 1, {0, 2}, LockMode::kShared,
                                      Seconds(1))).ok());
    EXPECT_TRUE((co_await mgr.Acquire(self, 2, {0, 2}, LockMode::kShared,
                                      Seconds(1))).ok());
    self.SpawnFiber([](sim::Process& p, LockManager& m) -> Task<void> {
      EXPECT_TRUE((co_await m.Acquire(p, 1, {0, 2}, LockMode::kExclusive,
                                      Seconds(10))).ok());
      m.ReleaseAll(1);
    }(self, mgr));
    co_await self.Sleep(Milliseconds(10));
    mgr.ReleaseAll(2);
    co_await self.Sleep(Milliseconds(10));
    // Both gone; a third txn must get X immediately (fast path, no wait).
    const std::uint64_t waits_before = mgr.waits();
    EXPECT_TRUE((co_await mgr.Acquire(self, 3, {0, 2}, LockMode::kExclusive,
                                      Seconds(1))).ok());
    EXPECT_EQ(mgr.waits(), waits_before);
    mgr.ReleaseAll(3);
  });
  EXPECT_FALSE(mgr.IsHeld({0, 2}));
}

// ---------------------------------------------------------------------------
// The wait-time histogram: slow-path waits record sim-time blocked.

TEST_F(LockFixture, WaitTimeHistogramRecordsBlockedTime) {
  Run([&](sim::Process& self) -> Task<void> {
    EXPECT_TRUE((co_await mgr.Acquire(self, 1, {0, 4}, LockMode::kExclusive,
                                      Seconds(1))).ok());
    self.SpawnFiber([](sim::Process& p, LockManager& m) -> Task<void> {
      EXPECT_TRUE((co_await m.Acquire(p, 2, {0, 4}, LockMode::kExclusive,
                                      Seconds(5))).ok());
      m.ReleaseAll(2);
    }(self, mgr));
    co_await self.Sleep(Milliseconds(25));
    mgr.ReleaseAll(1);
  });
  ASSERT_EQ(mgr.wait_time().count(), 1u);
  // Log-bucketed histogram: the recorded wait rounds to its bucket, so
  // check the quantile is in the right octave rather than exact.
  const auto p50 = static_cast<std::int64_t>(mgr.wait_time().Percentile(0.5));
  EXPECT_GE(p50, Milliseconds(20).ns);
  EXPECT_LE(p50, Milliseconds(40).ns);
}

}  // namespace
}  // namespace ods::tp

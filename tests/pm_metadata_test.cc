// Unit tests for the PMM's self-consistent metadata: serialization,
// dual-slot recovery under torn writes and corruption, and the region
// allocator.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "pm/metadata.h"
#include "pm/npmu.h"

namespace ods::pm {
namespace {

VolumeMetadata SampleMeta() {
  VolumeMetadata m;
  m.volume_name = "$PM1";
  m.data_capacity = 1 << 20;
  m.regions.push_back(RegionRecord{"audit0", "$ADP0", 0, 65536, {1, 2}});
  m.regions.push_back(RegionRecord{"tcb", "$TMF", 65536, 4096, {}});
  m.free_list = {FreeExtent{65536 + 4096, (1 << 20) - 65536 - 4096}};
  return m;
}

TEST(MetadataTest, SerializeRoundTrip) {
  const VolumeMetadata m = SampleMeta();
  auto bytes = m.Serialize();
  auto back = VolumeMetadata::Deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->volume_name, "$PM1");
  EXPECT_EQ(back->data_capacity, 1u << 20);
  ASSERT_EQ(back->regions.size(), 2u);
  EXPECT_EQ(back->regions[0].name, "audit0");
  EXPECT_EQ(back->regions[0].owner, "$ADP0");
  EXPECT_EQ(back->regions[0].access_list, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_TRUE(back->regions[1].access_list.empty());
  ASSERT_EQ(back->free_list.size(), 1u);
  EXPECT_EQ(back->free_list[0].offset, 65536u + 4096u);
}

TEST(MetadataTest, DeserializeRejectsTruncation) {
  auto bytes = SampleMeta().Serialize();
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
                          bytes.size() - 1}) {
    auto back = VolumeMetadata::Deserialize(
        std::span<const std::byte>(bytes.data(), cut));
    EXPECT_FALSE(back.has_value()) << "cut=" << cut;
  }
}

TEST(SlotTest, EncodeDecodeRoundTrip) {
  MetadataSlot slot{42, SampleMeta().Serialize()};
  auto raw = EncodeSlot(slot);
  ASSERT_LE(raw.size(), kMetadataCopyBytes);
  auto back = DecodeSlot(raw);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->epoch, 42u);
  EXPECT_EQ(back->payload, slot.payload);
}

TEST(SlotTest, CorruptionDetected) {
  auto raw = EncodeSlot(MetadataSlot{7, SampleMeta().Serialize()});
  for (std::size_t i = 0; i < raw.size(); i += 13) {
    auto copy = raw;
    copy[i] ^= std::byte{0x01};
    EXPECT_FALSE(DecodeSlot(copy).has_value()) << "flip at " << i;
  }
}

TEST(SlotTest, TornWriteDetected) {
  // A torn write leaves a prefix of the new image over the old one.
  auto old_raw = EncodeSlot(MetadataSlot{1, SampleMeta().Serialize()});
  auto new_raw = EncodeSlot(MetadataSlot{2, SampleMeta().Serialize()});
  old_raw.resize(kMetadataCopyBytes);
  new_raw.resize(kMetadataCopyBytes);
  auto torn = old_raw;
  std::copy_n(new_raw.begin(), 100, torn.begin());  // first packet only
  EXPECT_FALSE(DecodeSlot(torn).has_value());
}

TEST(SlotTest, RecoverPicksNewestValid) {
  auto a = EncodeSlot(MetadataSlot{5, {std::byte{1}}});
  auto b = EncodeSlot(MetadataSlot{9, {std::byte{2}}});
  auto best = RecoverSlots(a, b);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->epoch, 9u);
}

TEST(SlotTest, RecoverFallsBackToValidSlot) {
  auto a = EncodeSlot(MetadataSlot{5, {std::byte{1}}});
  auto b = EncodeSlot(MetadataSlot{9, {std::byte{2}}});
  b[10] ^= std::byte{0xFF};  // corrupt the newer one
  auto best = RecoverSlots(a, b);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->epoch, 5u) << "must fall back to the older valid copy";
}

TEST(SlotTest, RecoverBothInvalidFails) {
  std::vector<std::byte> a(kMetadataCopyBytes), b(kMetadataCopyBytes);
  EXPECT_FALSE(RecoverSlots(a, b).has_value());
}

TEST(SlotTest, NextSlotNeverTargetsNewestValid) {
  auto a = EncodeSlot(MetadataSlot{5, {std::byte{1}}});
  auto b = EncodeSlot(MetadataSlot{9, {std::byte{2}}});
  EXPECT_EQ(NextSlotIndex(a, b), 0) << "B is newest; write to A next";
  auto c = EncodeSlot(MetadataSlot{11, {std::byte{3}}});
  EXPECT_EQ(NextSlotIndex(c, b), 1) << "A is newest; write to B next";
}

// --------------------------------------------------------------- allocator

TEST(AllocatorTest, FirstFitAllocates) {
  VolumeMetadata m;
  m.data_capacity = 1000;
  m.free_list = {FreeExtent{0, 1000}};
  auto a = m.Allocate(100);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 0u);
  auto b = m.Allocate(200);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, 100u);
  EXPECT_EQ(m.FreeBytes(), 700u);
}

TEST(AllocatorTest, ExhaustionReported) {
  VolumeMetadata m;
  m.free_list = {FreeExtent{0, 100}};
  EXPECT_FALSE(m.Allocate(101).ok());
  EXPECT_TRUE(m.Allocate(100).ok());
  EXPECT_FALSE(m.Allocate(1).ok());
}

TEST(AllocatorTest, ReleaseCoalescesNeighbours) {
  VolumeMetadata m;
  m.free_list = {FreeExtent{0, 300}};
  auto a = m.Allocate(100);
  auto b = m.Allocate(100);
  auto c = m.Allocate(100);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(m.FreeBytes(), 0u);
  m.Release(*a, 100);
  m.Release(*c, 100);
  EXPECT_EQ(m.free_list.size(), 2u);
  m.Release(*b, 100);  // bridges both
  ASSERT_EQ(m.free_list.size(), 1u);
  EXPECT_EQ(m.free_list[0].offset, 0u);
  EXPECT_EQ(m.free_list[0].length, 300u);
}

TEST(AllocatorTest, FragmentationThenReuse) {
  VolumeMetadata m;
  m.free_list = {FreeExtent{0, 1000}};
  std::vector<std::uint64_t> offs;
  for (int i = 0; i < 10; ++i) {
    auto r = m.Allocate(100);
    ASSERT_TRUE(r.ok());
    offs.push_back(*r);
  }
  // Free every other block; a 150-byte request must fail, 100 succeeds.
  for (int i = 0; i < 10; i += 2) m.Release(offs[static_cast<size_t>(i)], 100);
  EXPECT_FALSE(m.Allocate(150).ok());
  auto r = m.Allocate(100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
}

TEST(AllocatorTest, PropertyRandomAllocFreeConservesBytes) {
  VolumeMetadata m;
  const std::uint64_t cap = 1 << 16;
  m.free_list = {FreeExtent{0, cap}};
  Rng rng(99);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> live;
  std::uint64_t live_bytes = 0;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      const std::uint64_t len = 1 + rng.Below(512);
      auto r = m.Allocate(len);
      if (r.ok()) {
        live.emplace_back(*r, len);
        live_bytes += len;
      }
    } else {
      const auto idx = rng.Below(live.size());
      auto [off, len] = live[idx];
      live[idx] = live.back();
      live.pop_back();
      m.Release(off, len);
      live_bytes -= len;
    }
    ASSERT_EQ(m.FreeBytes() + live_bytes, cap) << "byte conservation";
  }
  // Free everything: must coalesce back to one extent.
  for (auto [off, len] : live) m.Release(off, len);
  ASSERT_EQ(m.free_list.size(), 1u);
  EXPECT_EQ(m.free_list[0].length, cap);
}

}  // namespace
}  // namespace ods::pm

// Tests for the NSK-style cluster substrate: CPUs, named processes,
// request/reply messaging with retry, CPU failure propagation, and
// process pairs (checkpointing, takeover, resync, no lost externalized
// state).
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "nsk/cluster.h"
#include "nsk/pair.h"
#include "nsk/process.h"
#include "sim/simulation.h"

namespace ods::nsk {
namespace {

using sim::Microseconds;
using sim::Milliseconds;
using sim::Seconds;
using sim::SimTime;
using sim::Task;

// A generic scriptable NSK process.
class TestProcess : public NskProcess {
 public:
  using Body = std::function<Task<void>(TestProcess&)>;
  TestProcess(Cluster& cluster, int cpu, std::string name, Body body)
      : NskProcess(cluster, cpu, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

// An echo server registered under a name.
class EchoServer : public NskProcess {
 public:
  EchoServer(Cluster& cluster, int cpu, std::string name)
      : NskProcess(cluster, cpu, std::move(name)) {}

  int handled = 0;

 protected:
  Task<void> Main() override {
    cluster().names().Register(name(), this);
    while (true) {
      Request req = co_await Mailbox().Receive(*this);
      ++handled;
      co_await Compute(Microseconds(5));
      req.Respond(OkStatus(), std::move(req.payload));
    }
  }
};

struct ClusterFixture : ::testing::Test {
  ClusterFixture() : sim(7), cluster(sim, MakeConfig()) {}

  static ClusterConfig MakeConfig() {
    ClusterConfig c;
    c.num_cpus = 4;
    return c;
  }

  sim::Simulation sim;
  Cluster cluster;
};

// ----------------------------------------------------------- basic calls

TEST_F(ClusterFixture, CallRoundTrip) {
  sim.Adopt<EchoServer>(cluster, 0, "$echo");
  Result<Reply> result(Status(ErrorCode::kInternal, "unset"));
  sim.Adopt<TestProcess>(cluster, 1, "client",
                         [&](TestProcess& self) -> Task<void> {
                           std::vector<std::byte> payload(64, std::byte{0x5A});
                           result = co_await self.Call("$echo", 1, payload);
                         });
  sim.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->status.ok());
  EXPECT_EQ(result->payload.size(), 64u);
}

TEST_F(ClusterFixture, CallHasWireLatency) {
  sim.Adopt<EchoServer>(cluster, 0, "$echo");
  SimTime done{};
  sim.Adopt<TestProcess>(cluster, 1, "client",
                         [&](TestProcess& self) -> Task<void> {
                           (void)co_await self.Call("$echo", 1, {});
                           done = self.sim().Now();
                         });
  sim.Run();
  // At least two software latencies (request + reply legs).
  EXPECT_GT(done.ns, 2 * cluster.config().fabric.software_latency.ns);
  EXPECT_LT(done.ns, Milliseconds(1).ns);
}

TEST_F(ClusterFixture, CallToUnknownNameFails) {
  Result<Reply> result(Status(ErrorCode::kInternal, "unset"));
  sim.Adopt<TestProcess>(cluster, 0, "client",
                         [&](TestProcess& self) -> Task<void> {
                           CallOptions opts;
                           opts.max_attempts = 2;
                           opts.retry_backoff = Milliseconds(1);
                           result = co_await self.Call("$nobody", 1, {}, opts);
                         });
  sim.Run();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kUnavailable);
}

TEST_F(ClusterFixture, CallTimesOutAgainstDeafServer) {
  // A server that registers but never reads its mailbox.
  sim.Adopt<TestProcess>(cluster, 0, "$deaf",
                         [&](TestProcess& self) -> Task<void> {
                           self.cluster().names().Register("$deaf", &self);
                           co_await self.Sleep(Seconds(3600));
                         });
  Result<Reply> result(Status(ErrorCode::kInternal, "unset"));
  sim.Adopt<TestProcess>(cluster, 1, "client",
                         [&](TestProcess& self) -> Task<void> {
                           CallOptions opts;
                           opts.timeout = Milliseconds(20);
                           opts.max_attempts = 2;
                           opts.retry_backoff = Milliseconds(1);
                           result = co_await self.Call("$deaf", 1, {}, opts);
                         });
  sim.RunUntil(SimTime{Seconds(10).ns});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kTimedOut);
}

TEST_F(ClusterFixture, ManyClientsOneServer) {
  auto& server = sim.Adopt<EchoServer>(cluster, 0, "$echo");
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    sim.Adopt<TestProcess>(cluster, 1 + (i % 3), "c" + std::to_string(i),
                           [&](TestProcess& self) -> Task<void> {
                             for (int k = 0; k < 5; ++k) {
                               auto r = co_await self.Call("$echo", 1, {});
                               EXPECT_TRUE(r.ok());
                             }
                             ++completed;
                           });
  }
  sim.Run();
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(server.handled, 100);
}

TEST_F(ClusterFixture, ComputeSerializesOnCpu) {
  // Two processes on the same CPU each needing 10ms of compute: total
  // elapsed must be ~20ms, not ~10ms.
  SimTime t_done{};
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    sim.Adopt<TestProcess>(cluster, 0, "w" + std::to_string(i),
                           [&](TestProcess& self) -> Task<void> {
                             co_await self.Compute(Milliseconds(10));
                             if (++done == 2) t_done = self.sim().Now();
                           });
  }
  sim.Run();
  EXPECT_GE(t_done.ns, Milliseconds(20).ns);
}

TEST_F(ClusterFixture, CpuFailureKillsProcesses) {
  auto& server = sim.Adopt<EchoServer>(cluster, 2, "$echo");
  sim.Schedule(SimTime{1000}, [&] { cluster.cpu(2).Fail(); });
  sim.Run();
  EXPECT_FALSE(server.alive());
  EXPECT_TRUE(cluster.cpu(2).failed());
}

TEST_F(ClusterFixture, CastIsOneWay) {
  auto& server = sim.Adopt<EchoServer>(cluster, 0, "$echo");
  sim.Adopt<TestProcess>(cluster, 1, "client",
                         [&](TestProcess& self) -> Task<void> {
                           self.Cast("$echo", 9, {});
                           co_return;
                         });
  sim.Run();
  EXPECT_EQ(server.handled, 1);
}

// ------------------------------------------------------------ process pair

// A replicated counter service. kAdd adds the little-endian u64 payload
// to the counter; the primary checkpoints the new value to the backup
// BEFORE replying (externalization rule), so a committed add must never
// be lost across takeover. kGet returns the counter.
inline constexpr std::uint32_t kAdd = 1;
inline constexpr std::uint32_t kGet = 2;

class CounterPair : public PairMember {
 public:
  using PairMember::PairMember;

  std::uint64_t value = 0;

 protected:
  Task<void> HandleRequest(Request req) override {
    if (req.kind == kAdd) {
      Deserializer d(req.payload);
      std::uint64_t delta = 0;
      d.GetU64(delta);
      value += delta;
      Serializer s;
      s.PutU64(value);
      (void)co_await CheckpointToBackup(s.bytes());
      req.Respond(OkStatus());
    } else if (req.kind == kGet) {
      Serializer s;
      s.PutU64(value);
      req.Respond(OkStatus(), std::move(s).Take());
    } else {
      req.Respond(Status(ErrorCode::kInvalidArgument, "bad kind"));
    }
    co_return;
  }

  void ApplyCheckpoint(std::span<const std::byte> delta) override {
    Deserializer d(delta);
    d.GetU64(value);
  }

  std::vector<std::byte> SnapshotState() override {
    Serializer s;
    s.PutU64(value);
    return std::move(s).Take();
  }

  void InstallState(std::span<const std::byte> snapshot) override {
    Deserializer d(snapshot);
    d.GetU64(value);
  }
};

struct PairFixture : ClusterFixture {
  PairFixture() {
    primary = &sim.AdoptStopped<CounterPair>(cluster, 0, "$ctr", "$ctr-P");
    backup = &sim.AdoptStopped<CounterPair>(cluster, 1, "$ctr", "$ctr-B");
    primary->SetPeer(backup);
    backup->SetPeer(primary);
    primary->Start();
    backup->Start();
  }

  CounterPair* primary;
  CounterPair* backup;
};

TEST_F(PairFixture, RolesAssignedBySpawnOrder) {
  sim.RunUntil(SimTime{Milliseconds(10).ns});
  EXPECT_TRUE(primary->is_primary());
  EXPECT_FALSE(backup->is_primary());
}

TEST_F(PairFixture, CheckpointsReachBackup) {
  sim.Adopt<TestProcess>(cluster, 2, "client",
                         [&](TestProcess& self) -> Task<void> {
                           Serializer s;
                           s.PutU64(5);
                           for (int i = 0; i < 4; ++i) {
                             auto r = co_await self.Call("$ctr", kAdd, s.bytes());
                             EXPECT_TRUE(r.ok());
                           }
                         });
  sim.RunUntil(SimTime{Seconds(2).ns});
  EXPECT_EQ(primary->value, 20u);
  EXPECT_EQ(backup->value, 20u) << "backup must track checkpointed state";
  EXPECT_EQ(primary->checkpoints_sent(), 4u);
}

TEST_F(PairFixture, TakeoverPreservesExternalizedState) {
  std::uint64_t read_back = 0;
  sim.Adopt<TestProcess>(
      cluster, 2, "client", [&](TestProcess& self) -> Task<void> {
        Serializer s;
        s.PutU64(7);
        for (int i = 0; i < 3; ++i) {
          auto r = co_await self.Call("$ctr", kAdd, s.bytes());
          EXPECT_TRUE(r.ok());
        }
        // Kill the primary, then read through the service name. The
        // promoted backup must return the full committed value.
        primary->Kill();
        auto r = co_await self.Call("$ctr", kGet, {});
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        if (r.ok()) {
          Deserializer d(r->payload);
          d.GetU64(read_back);
        }
      });
  sim.RunUntil(SimTime{Seconds(10).ns});
  EXPECT_EQ(read_back, 21u) << "no externalized update may be lost";
  EXPECT_TRUE(backup->is_primary());
}

TEST_F(PairFixture, TakeoverWithinASecond) {
  // §4: "a backup process takes over from its primary in a second or
  // less". Measure the service-name outage window.
  sim.Schedule(SimTime{Milliseconds(100).ns}, [&] { primary->Kill(); });
  sim.RunUntil(SimTime{Seconds(5).ns});
  // Find re-registration of "$ctr" by the backup.
  SimTime reregistered{};
  for (const auto& ev : cluster.names().history()) {
    if (ev.name == "$ctr" && ev.registered &&
        ev.when > SimTime{Milliseconds(100).ns}) {
      reregistered = ev.when;
      break;
    }
  }
  ASSERT_NE(reregistered.ns, 0);
  const auto outage = reregistered - SimTime{Milliseconds(100).ns};
  EXPECT_LE(outage.ns, Seconds(1).ns);
  EXPECT_GT(outage.ns, 0);
}

TEST_F(PairFixture, BackupDeathLeavesServiceRunning) {
  std::uint64_t read_back = 0;
  sim.Adopt<TestProcess>(
      cluster, 2, "client", [&](TestProcess& self) -> Task<void> {
        Serializer s;
        s.PutU64(1);
        (void)co_await self.Call("$ctr", kAdd, s.bytes());
        backup->Kill();
        co_await self.Sleep(Milliseconds(300));
        // Service continues unprotected.
        (void)co_await self.Call("$ctr", kAdd, s.bytes());
        auto r = co_await self.Call("$ctr", kGet, {});
        EXPECT_TRUE(r.ok());
        if (r.ok()) {
          Deserializer d(r->payload);
          d.GetU64(read_back);
        }
      });
  sim.RunUntil(SimTime{Seconds(5).ns});
  EXPECT_EQ(read_back, 2u);
  EXPECT_TRUE(primary->is_primary());
}

TEST_F(PairFixture, RestartedMemberResyncsAsBackup) {
  sim.Adopt<TestProcess>(
      cluster, 2, "client", [&](TestProcess& self) -> Task<void> {
        Serializer s;
        s.PutU64(10);
        (void)co_await self.Call("$ctr", kAdd, s.bytes());
        backup->Kill();
        co_await self.Sleep(Milliseconds(200));
        (void)co_await self.Call("$ctr", kAdd, s.bytes());  // while unprotected
        backup->Restart();
        co_await self.Sleep(Milliseconds(500));
        // Backup must have resynced the full state (20), and new updates
        // must be checkpointed to it again.
        (void)co_await self.Call("$ctr", kAdd, s.bytes());
        co_await self.Sleep(Milliseconds(200));
      });
  sim.RunUntil(SimTime{Seconds(5).ns});
  EXPECT_FALSE(backup->is_primary());
  EXPECT_EQ(backup->value, 30u) << "resync + resumed checkpoints";
}

TEST_F(PairFixture, DoubleFailoverChain) {
  // Kill primary -> backup promotes; restart old primary -> it becomes
  // the new backup; kill the new primary -> old primary promotes again.
  std::uint64_t final_value = 0;
  sim.Adopt<TestProcess>(
      cluster, 2, "client", [&](TestProcess& self) -> Task<void> {
        Serializer s;
        s.PutU64(3);
        (void)co_await self.Call("$ctr", kAdd, s.bytes());
        primary->Kill();
        co_await self.Sleep(Seconds(1));
        (void)co_await self.Call("$ctr", kAdd, s.bytes());
        primary->Restart();
        co_await self.Sleep(Seconds(1));
        backup->Kill();
        co_await self.Sleep(Seconds(1));
        auto r = co_await self.Call("$ctr", kGet, {});
        EXPECT_TRUE(r.ok());
        if (r.ok()) {
          Deserializer d(r->payload);
          d.GetU64(final_value);
        }
      });
  sim.RunUntil(SimTime{Seconds(10).ns});
  EXPECT_EQ(final_value, 6u);
  EXPECT_TRUE(primary->is_primary());
  EXPECT_FALSE(backup->alive());
}

}  // namespace
}  // namespace ods::nsk

// Unit tests for src/common: status/result, CRC-32C, serialization,
// histograms, RNG determinism.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "common/status.h"

namespace ods {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kNotFound, "region r1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "region r1");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: region r1");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status(ErrorCode::kTimedOut, "a"), Status(ErrorCode::kTimedOut, "b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status(ErrorCode::kUnavailable, "down"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(ErrorCodeTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

// ----------------------------------------------------------------- CRC32

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283 (iSCSI test vector).
  const char* data = "123456789";
  EXPECT_EQ(Crc32c(data, 9), 0xE3069283u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32c(nullptr, 0), 0u); }

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<std::byte> buf(257);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i * 31);
  }
  const std::uint32_t good = Crc32c(buf);
  for (std::size_t bit = 0; bit < buf.size() * 8; bit += 97) {
    buf[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    EXPECT_NE(Crc32c(buf), good) << "undetected flip at bit " << bit;
    buf[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  }
  EXPECT_EQ(Crc32c(buf), good);
}

TEST(Crc32Test, ChainedEqualsWhole) {
  std::vector<std::byte> buf(100);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i);
  }
  const std::uint32_t whole = Crc32c(buf);
  const std::uint32_t part1 =
      Crc32c(std::span<const std::byte>(buf.data(), 37));
  const std::uint32_t chained =
      Crc32c(std::span<const std::byte>(buf.data() + 37, 63), part1);
  EXPECT_EQ(chained, whole);
}

// ------------------------------------------------------------- Serialize

TEST(SerializeTest, RoundTripScalars) {
  Serializer s;
  s.PutU8(0xAB);
  s.PutU16(0xBEEF);
  s.PutU32(0xDEADBEEFu);
  s.PutU64(0x0123456789ABCDEFull);
  s.PutI64(-42);
  s.PutBool(true);

  Deserializer d(s.bytes());
  std::uint8_t u8 = 0;
  std::uint16_t u16 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  bool b = false;
  EXPECT_TRUE(d.GetU8(u8));
  EXPECT_TRUE(d.GetU16(u16));
  EXPECT_TRUE(d.GetU32(u32));
  EXPECT_TRUE(d.GetU64(u64));
  EXPECT_TRUE(d.GetI64(i64));
  EXPECT_TRUE(d.GetBool(b));
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.remaining(), 0u);
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_TRUE(b);
}

TEST(SerializeTest, LittleEndianOnWire) {
  Serializer s;
  s.PutU32(0x01020304u);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.bytes()[0], std::byte{0x04});
  EXPECT_EQ(s.bytes()[3], std::byte{0x01});
}

TEST(SerializeTest, StringAndBlobRoundTrip) {
  Serializer s;
  s.PutString("hot-stock");
  std::vector<std::byte> blob = {std::byte{1}, std::byte{2}, std::byte{3}};
  s.PutBlob(blob);

  Deserializer d(s.bytes());
  std::string str;
  std::vector<std::byte> out;
  EXPECT_TRUE(d.GetString(str));
  EXPECT_TRUE(d.GetBlob(out));
  EXPECT_EQ(str, "hot-stock");
  EXPECT_EQ(out, blob);
}

TEST(SerializeTest, TruncationLatchesFailure) {
  Serializer s;
  s.PutU32(7);
  Deserializer d(s.bytes());
  std::uint64_t v = 0;
  EXPECT_FALSE(d.GetU64(v));  // only 4 bytes available
  EXPECT_FALSE(d.ok());
  std::uint32_t w = 0;
  EXPECT_FALSE(d.GetU32(w));  // failure latched; later reads fail too
}

TEST(SerializeTest, EnumRoundTrip) {
  enum class Kind : std::uint32_t { kA = 3, kB = 9 };
  Serializer s;
  s.PutEnum(Kind::kB);
  Deserializer d(s.bytes());
  Kind k = Kind::kA;
  EXPECT_TRUE(d.GetEnum(k));
  EXPECT_EQ(k, Kind::kB);
}

// ----------------------------------------------------------------- Stats

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(15'000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 15'000u);
  EXPECT_EQ(h.max(), 15'000u);
  EXPECT_EQ(h.mean(), 15'000.0);
  EXPECT_EQ(h.Percentile(0.5), 15'000u);
}

TEST(HistogramTest, PercentileWithinQuantizationError) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100'000; ++v) h.Record(v);
  const auto p50 = static_cast<double>(h.Percentile(0.50));
  const auto p99 = static_cast<double>(h.Percentile(0.99));
  EXPECT_NEAR(p50, 50'000.0, 50'000.0 * 0.07);
  EXPECT_NEAR(p99, 99'000.0, 99'000.0 * 0.07);
}

TEST(HistogramTest, MergeCombines) {
  LatencyHistogram a, b;
  a.Record(10);
  b.Record(1'000'000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1'000'000u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.max(), 15u);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.Below(17), 17u);
  }
  EXPECT_EQ(r.Below(0), 0u);
  EXPECT_EQ(r.Below(1), 0u);
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng r(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.Below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 10'000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkGivesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  // The forked stream must not replay the parent stream.
  Rng b(42);
  b.Next();  // advance past the Fork() draw
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BernoulliExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace ods

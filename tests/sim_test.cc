// Tests for the discrete-event simulation core: event ordering, coroutine
// processes, sleep/future/channel/mutex/latch primitives, and — most
// importantly for this paper — kill semantics (fault injection must
// unwind cleanly, release resources, and never resume dead fibers).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/process.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"

namespace ods::sim {
namespace {

// A process whose behaviour is supplied as a lambda, for compact tests.
class LambdaProcess : public Process {
 public:
  using Body = std::function<Task<void>(LambdaProcess&)>;
  LambdaProcess(Simulation& sim, std::string name, Body body)
      : Process(sim, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

// ------------------------------------------------------------ event queue

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(SimTime{30}, [&] { order.push_back(3); });
  sim.Schedule(SimTime{10}, [&] { order.push_back(1); });
  sim.Schedule(SimTime{20}, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), SimTime{30});
}

TEST(SimulationTest, SameTimeEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(SimTime{5}, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulationTest, RunUntilLeavesLaterEvents) {
  Simulation sim;
  int ran = 0;
  sim.Schedule(SimTime{10}, [&] { ++ran; });
  sim.Schedule(SimTime{100}, [&] { ++ran; });
  sim.RunUntil(SimTime{50});
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.Now(), SimTime{50});
  sim.Run();
  EXPECT_EQ(ran, 2);
}

TEST(SimulationTest, NestedSchedulingAdvancesClock) {
  Simulation sim;
  SimTime observed{};
  sim.Schedule(SimTime{10}, [&] {
    sim.After(Nanoseconds(5), [&] { observed = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(observed, SimTime{15});
}

// ---------------------------------------------------------------- process

TEST(ProcessTest, SleepAdvancesSimTime) {
  Simulation sim;
  SimTime woke{};
  sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    co_await self.Sleep(Microseconds(100));
    woke = self.sim().Now();
  });
  sim.Run();
  EXPECT_EQ(woke, SimTime{100'000});
}

TEST(ProcessTest, ZeroSleepDoesNotSuspend) {
  Simulation sim;
  bool done = false;
  sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    co_await self.Sleep(Nanoseconds(0));
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(ProcessTest, ProcessFinishesAfterMainReturns) {
  Simulation sim;
  auto& p =
      sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
        co_await self.Sleep(Microseconds(1));
      });
  EXPECT_TRUE(p.alive());
  EXPECT_FALSE(p.finished());
  sim.Run();
  EXPECT_FALSE(p.alive());
  EXPECT_TRUE(p.finished());
}

TEST(ProcessTest, NestedTasksPropagateValues) {
  Simulation sim;
  int result = 0;
  sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    auto inner = [](LambdaProcess& s, int x) -> Task<int> {
      co_await s.Sleep(Microseconds(1));
      co_return x * 2;
    };
    result = co_await inner(self, 21);
  });
  sim.Run();
  EXPECT_EQ(result, 42);
}

TEST(ProcessTest, FibersInterleaveByTime) {
  Simulation sim;
  std::vector<std::string> log;
  sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    self.SpawnFiber([](LambdaProcess& s, std::vector<std::string>& l)
                        -> Task<void> {
      co_await s.Sleep(Microseconds(10));
      l.push_back("b@10");
    }(self, log));
    co_await self.Sleep(Microseconds(5));
    log.push_back("a@5");
    co_await self.Sleep(Microseconds(10));
    log.push_back("a@15");
  });
  sim.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "a@5");
  EXPECT_EQ(log[1], "b@10");
  EXPECT_EQ(log[2], "a@15");
}

// ------------------------------------------------------------------- kill

TEST(KillTest, KilledSleeperUnwinds) {
  Simulation sim;
  bool reached_after_sleep = false;
  bool destructor_ran = false;

  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };

  auto& p =
      sim.Spawn<LambdaProcess>("victim", [&](LambdaProcess& self) -> Task<void> {
        Sentinel s{&destructor_ran};
        co_await self.Sleep(Seconds(100));
        reached_after_sleep = true;
      });
  sim.Schedule(SimTime{1000}, [&] { p.Kill(); });
  sim.Run();
  EXPECT_FALSE(reached_after_sleep);
  EXPECT_TRUE(destructor_ran) << "RAII must run during kill unwinding";
  EXPECT_FALSE(p.alive());
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(sim.Now(), SimTime{1000}) << "the 100s timer must not hold the sim";
}

TEST(KillTest, StaleTimerDoesNotResurrect) {
  Simulation sim;
  int wakeups = 0;
  auto& p =
      sim.Spawn<LambdaProcess>("victim", [&](LambdaProcess& self) -> Task<void> {
        co_await self.Sleep(Microseconds(10));
        ++wakeups;
      });
  sim.ScheduleNow([&] { p.Kill(); });
  sim.Run();  // the 10us timer still fires, but must be a no-op
  EXPECT_EQ(wakeups, 0);
}

TEST(KillTest, SelfKillUnwindsAtNextAwait) {
  Simulation sim;
  bool after = false;
  sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    self.Kill();
    // Still running here (kill takes effect at the next suspension).
    co_await self.Sleep(Microseconds(1));
    after = true;
  });
  sim.Run();
  EXPECT_FALSE(after);
}

TEST(KillTest, DeathWatcherFires) {
  Simulation sim;
  bool notified = false;
  auto& p =
      sim.Spawn<LambdaProcess>("victim", [&](LambdaProcess& self) -> Task<void> {
        co_await self.Sleep(Seconds(10));
      });
  p.NotifyOnDeath([&] { notified = true; });
  sim.Schedule(SimTime{500}, [&] { p.Kill(); });
  sim.Run();
  EXPECT_TRUE(notified);
}

TEST(KillTest, RestartRunsMainAgain) {
  Simulation sim;
  int runs = 0;
  auto& p = sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    ++runs;
    co_await self.Sleep(Seconds(100));
  });
  sim.Schedule(SimTime{100}, [&] { p.Kill(); });
  sim.Schedule(SimTime{200}, [&] { p.Restart(); });
  sim.RunUntil(SimTime{1'000'000});
  EXPECT_EQ(runs, 2);
  EXPECT_TRUE(p.alive());
}

TEST(KillTest, KillAllFibers) {
  Simulation sim;
  int unwound = 0;
  struct Count {
    int* n;
    ~Count() { ++*n; }
  };
  auto& p = sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      self.SpawnFiber([](LambdaProcess& s, int* n) -> Task<void> {
        Count c{n};
        co_await s.Sleep(Seconds(50));
      }(self, &unwound));
    }
    Count c{&unwound};
    co_await self.Sleep(Seconds(50));
  });
  sim.Schedule(SimTime{10}, [&] { p.Kill(); });
  sim.Run();
  EXPECT_EQ(unwound, 4);
  EXPECT_TRUE(p.finished());
}

// -------------------------------------------------------- promise/future

TEST(FutureTest, WaitReturnsValue) {
  Simulation sim;
  Promise<int> promise(sim);
  int got = 0;
  sim.Spawn<LambdaProcess>("w", [&](LambdaProcess& self) -> Task<void> {
    got = co_await promise.GetFuture().Wait(self);
  });
  sim.Schedule(SimTime{100}, [&] { promise.Set(99); });
  sim.Run();
  EXPECT_EQ(got, 99);
}

TEST(FutureTest, AlreadyResolvedReturnsImmediately) {
  Simulation sim;
  Promise<int> promise(sim);
  promise.Set(7);
  int got = 0;
  sim.Spawn<LambdaProcess>("w", [&](LambdaProcess& self) -> Task<void> {
    got = co_await promise.GetFuture().Wait(self);
    EXPECT_EQ(self.sim().Now(), SimTime{0});
  });
  sim.Run();
  EXPECT_EQ(got, 7);
}

TEST(FutureTest, WaitForTimesOut) {
  Simulation sim;
  Promise<int> promise(sim);
  bool timed_out = false;
  sim.Spawn<LambdaProcess>("w", [&](LambdaProcess& self) -> Task<void> {
    auto v = co_await promise.GetFuture().WaitFor(self, Microseconds(50));
    timed_out = !v.has_value();
  });
  sim.Run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(sim.Now(), SimTime{50'000});
}

TEST(FutureTest, WaitForBeatsTimeout) {
  Simulation sim;
  Promise<int> promise(sim);
  std::optional<int> got;
  sim.Spawn<LambdaProcess>("w", [&](LambdaProcess& self) -> Task<void> {
    got = co_await promise.GetFuture().WaitFor(self, Microseconds(50));
  });
  sim.Schedule(SimTime{10'000}, [&] { promise.Set(5); });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 5);
}

TEST(FutureTest, LateSetAfterTimeoutIsSafe) {
  Simulation sim;
  Promise<int> promise(sim);
  sim.Spawn<LambdaProcess>("w", [&](LambdaProcess& self) -> Task<void> {
    auto v = co_await promise.GetFuture().WaitFor(self, Microseconds(1));
    EXPECT_FALSE(v.has_value());
  });
  sim.Schedule(SimTime{1'000'000}, [&] { promise.Set(1); });
  sim.Run();  // must not crash or double-resume
}

TEST(FutureTest, KilledWaiterUnwinds) {
  Simulation sim;
  Promise<int> promise(sim);
  bool after = false;
  auto& p = sim.Spawn<LambdaProcess>("w", [&](LambdaProcess& self) -> Task<void> {
    (void)co_await promise.GetFuture().Wait(self);
    after = true;
  });
  sim.Schedule(SimTime{10}, [&] { p.Kill(); });
  sim.Run();
  EXPECT_FALSE(after);
  EXPECT_TRUE(p.finished());
}

// ---------------------------------------------------------------- channel

TEST(ChannelTest, SendThenReceive) {
  Simulation sim;
  Channel<int> ch(sim);
  ch.Send(1);
  ch.Send(2);
  std::vector<int> got;
  sim.Spawn<LambdaProcess>("r", [&](LambdaProcess& self) -> Task<void> {
    got.push_back(co_await ch.Receive(self));
    got.push_back(co_await ch.Receive(self));
  });
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(ChannelTest, ReceiveBlocksUntilSend) {
  Simulation sim;
  Channel<int> ch(sim);
  SimTime when{};
  sim.Spawn<LambdaProcess>("r", [&](LambdaProcess& self) -> Task<void> {
    (void)co_await ch.Receive(self);
    when = self.sim().Now();
  });
  sim.Schedule(SimTime{777}, [&] { ch.Send(9); });
  sim.Run();
  EXPECT_EQ(when, SimTime{777});
}

TEST(ChannelTest, FifoAcrossManyMessages) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  sim.Spawn<LambdaProcess>("r", [&](LambdaProcess& self) -> Task<void> {
    for (int i = 0; i < 100; ++i) got.push_back(co_await ch.Receive(self));
  });
  for (int i = 0; i < 100; ++i) {
    sim.Schedule(SimTime{i * 10}, [&ch, i] { ch.Send(i); });
  }
  sim.Run();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(ChannelTest, ReceiveForTimesOut) {
  Simulation sim;
  Channel<int> ch(sim);
  bool timed_out = false;
  sim.Spawn<LambdaProcess>("r", [&](LambdaProcess& self) -> Task<void> {
    auto v = co_await ch.ReceiveFor(self, Milliseconds(5));
    timed_out = !v.has_value();
  });
  sim.Run();
  EXPECT_TRUE(timed_out);
}

TEST(ChannelTest, SendSkipsTimedOutReceiver) {
  Simulation sim;
  Channel<int> ch(sim);
  std::optional<int> first, second;
  sim.Spawn<LambdaProcess>("r1", [&](LambdaProcess& self) -> Task<void> {
    first = co_await ch.ReceiveFor(self, Microseconds(10));
    // Second receive with a long deadline: must get the message.
    second = co_await ch.ReceiveFor(self, Seconds(10));
  });
  sim.Schedule(SimTime{1'000'000}, [&] { ch.Send(42); });
  sim.Run();
  EXPECT_FALSE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 42);
}

TEST(ChannelTest, TwoReceiversEachGetOne) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  for (int r = 0; r < 2; ++r) {
    sim.Spawn<LambdaProcess>("r" + std::to_string(r),
                             [&](LambdaProcess& self) -> Task<void> {
                               got.push_back(co_await ch.Receive(self));
                             });
  }
  sim.Schedule(SimTime{10}, [&] { ch.Send(1); });
  sim.Schedule(SimTime{20}, [&] { ch.Send(2); });
  sim.Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0] + got[1], 3);
}

// ------------------------------------------------------------------ mutex

TEST(MutexTest, MutualExclusionSerializes) {
  Simulation sim;
  SimMutex mu(sim);
  std::vector<std::pair<std::string, SimTime>> log;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn<LambdaProcess>(
        "p" + std::to_string(i), [&, i](LambdaProcess& self) -> Task<void> {
          auto guard = co_await mu.Acquire(self);
          log.emplace_back("enter" + std::to_string(i), self.sim().Now());
          co_await self.Sleep(Microseconds(100));
          log.emplace_back("exit" + std::to_string(i), self.sim().Now());
        });
  }
  sim.Run();
  ASSERT_EQ(log.size(), 6u);
  // Critical sections must not overlap: enter/exit strictly alternate.
  for (size_t i = 0; i + 1 < log.size(); i += 2) {
    EXPECT_TRUE(log[i].first.starts_with("enter"));
    EXPECT_TRUE(log[i + 1].first.starts_with("exit"));
    EXPECT_EQ(log[i].first.substr(5), log[i + 1].first.substr(4));
  }
}

TEST(MutexTest, FifoGrantOrder) {
  Simulation sim;
  SimMutex mu(sim);
  std::vector<int> grant_order;
  for (int i = 0; i < 4; ++i) {
    sim.Schedule(SimTime{i * 10}, [&, i] {
      sim.Spawn<LambdaProcess>(
          "p" + std::to_string(i), [&, i](LambdaProcess& self) -> Task<void> {
            auto guard = co_await mu.Acquire(self);
            grant_order.push_back(i);
            co_await self.Sleep(Milliseconds(1));
          });
    });
  }
  sim.Run();
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(MutexTest, KilledHolderReleasesViaRaii) {
  Simulation sim;
  SimMutex mu(sim);
  bool second_got_lock = false;
  auto& holder =
      sim.Spawn<LambdaProcess>("holder", [&](LambdaProcess& self) -> Task<void> {
        auto guard = co_await mu.Acquire(self);
        co_await self.Sleep(Seconds(100));  // hold "forever"
      });
  sim.Spawn<LambdaProcess>("waiter", [&](LambdaProcess& self) -> Task<void> {
    co_await self.Sleep(Microseconds(1));  // let holder acquire first
    auto guard = co_await mu.Acquire(self);
    second_got_lock = true;
  });
  sim.Schedule(SimTime{1'000}, [&] { holder.Kill(); });
  sim.Run();
  EXPECT_TRUE(second_got_lock)
      << "kill-unwinding must release held locks through RAII guards";
}

TEST(MutexTest, KilledWaiterIsSkipped) {
  Simulation sim;
  SimMutex mu(sim);
  std::vector<int> grants;
  auto& holder =
      sim.Spawn<LambdaProcess>("holder", [&](LambdaProcess& self) -> Task<void> {
        auto guard = co_await mu.Acquire(self);
        co_await self.Sleep(Milliseconds(10));
      });
  (void)holder;
  LambdaProcess* w1 = nullptr;
  sim.ScheduleNow([&] {
    w1 = &sim.Spawn<LambdaProcess>("w1", [&](LambdaProcess& self) -> Task<void> {
      auto guard = co_await mu.Acquire(self);
      grants.push_back(1);
    });
    sim.Spawn<LambdaProcess>("w2", [&](LambdaProcess& self) -> Task<void> {
      co_await self.Sleep(Microseconds(1));
      auto guard = co_await mu.Acquire(self);
      grants.push_back(2);
    });
  });
  sim.Schedule(SimTime{1'000'000}, [&] { w1->Kill(); });
  sim.Run();
  EXPECT_EQ(grants, (std::vector<int>{2}));
}

// ------------------------------------------------------------------ latch

TEST(LatchTest, WaitUntilAllArrive) {
  Simulation sim;
  Latch latch(sim, 3);
  SimTime released{};
  sim.Spawn<LambdaProcess>("joiner", [&](LambdaProcess& self) -> Task<void> {
    co_await latch.Wait(self);
    released = self.sim().Now();
  });
  for (int i = 1; i <= 3; ++i) {
    sim.Schedule(SimTime{i * 100}, [&] { latch.Arrive(); });
  }
  sim.Run();
  EXPECT_EQ(released, SimTime{300});
}

TEST(LatchTest, ZeroCountDoesNotBlock) {
  Simulation sim;
  Latch latch(sim, 0);
  bool done = false;
  sim.Spawn<LambdaProcess>("j", [&](LambdaProcess& self) -> Task<void> {
    co_await latch.Wait(self);
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------- determinism

TEST(DeterminismTest, IdenticalSeedsIdenticalTraces) {
  auto run_once = [](std::uint64_t seed) {
    Simulation sim(seed);
    std::vector<std::int64_t> trace;
    Channel<int> ch(sim);
    sim.Spawn<LambdaProcess>("producer",
                             [&](LambdaProcess& self) -> Task<void> {
                               for (int i = 0; i < 50; ++i) {
                                 co_await self.Sleep(Nanoseconds(
                                     static_cast<std::int64_t>(
                                         self.sim().rng().Below(1000))));
                                 ch.Send(i);
                               }
                             });
    sim.Spawn<LambdaProcess>("consumer",
                             [&](LambdaProcess& self) -> Task<void> {
                               for (int i = 0; i < 50; ++i) {
                                 (void)co_await ch.Receive(self);
                                 trace.push_back(self.sim().Now().ns);
                               }
                             });
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run_once(77), run_once(77));
  EXPECT_NE(run_once(77), run_once(78));
}

// Shutdown safety: abandoning a simulation with suspended fibers must not
// leak or crash (Simulation::~Simulation kills and unwinds everything).
TEST(ShutdownTest, AbandonedSimulationUnwindsCleanly) {
  bool destructor_ran = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  {
    Simulation sim;
    sim.Spawn<LambdaProcess>("p", [&](LambdaProcess& self) -> Task<void> {
      Sentinel s{&destructor_ran};
      co_await self.Sleep(Seconds(3600));
    });
    sim.RunUntil(SimTime{100});
    EXPECT_FALSE(destructor_ran);
  }
  EXPECT_TRUE(destructor_ran);
}

// ------------------------------------------------- calendar queue shape
//
// The calendar queue routes records into four tiers (active FIFO, near
// sorted array, fixed-width buckets, far heap) by distance from now.
// These tests pin the one observable contract — global (t, seq) order —
// across tier boundaries, window rebases and mid-dispatch scheduling.

// Deterministic xorshift so the "random" schedule is reproducible.
std::uint64_t NextRand(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

TEST(CalendarQueueTest, RandomScheduleMatchesReferenceOrder) {
  // Timestamps drawn across bucket width (128ns), the calendar window
  // (~2.1ms) and the far tier, including duplicates. The execution
  // order must equal a stable sort by time (stable = FIFO for ties).
  Simulation sim;
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  struct Ref {
    std::int64_t t;
    int id;
  };
  std::vector<Ref> expect;
  std::vector<int> got;
  for (int i = 0; i < 2000; ++i) {
    // Mix scales: same-bucket, in-window, and beyond-window times.
    const std::uint64_t r = NextRand(rng);
    std::int64_t t = 0;
    switch (r % 4) {
      case 0: t = static_cast<std::int64_t>(r % 200); break;          // dense
      case 1: t = static_cast<std::int64_t>(r % 100'000); break;      // window
      case 2: t = static_cast<std::int64_t>(r % 10'000'000); break;   // far
      default: t = static_cast<std::int64_t>(r % 50); break;          // ties
    }
    expect.push_back(Ref{t, i});
    sim.Schedule(SimTime{t}, [&got, i] { got.push_back(i); });
  }
  std::stable_sort(expect.begin(), expect.end(),
                   [](const Ref& a, const Ref& b) { return a.t < b.t; });
  sim.Run();
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i], expect[i].id) << "divergence at index " << i;
  }
}

TEST(CalendarQueueTest, EqualTimestampFifoAcrossTiers) {
  // Three events at the same far timestamp scheduled before the window
  // reaches it (far heap -> migration -> bucket), then two more at that
  // timestamp scheduled mid-dispatch of an earlier event (direct bucket
  // append). Migration pops in (t, seq) order and happens before any
  // direct push into the rebased window, so FIFO survives the detour.
  Simulation sim;
  std::vector<int> order;
  const SimTime far{5'000'000};  // beyond the ~2.1ms window
  for (int i = 0; i < 3; ++i) {
    sim.Schedule(far, [&order, i] { order.push_back(i); });
  }
  sim.Schedule(SimTime{100}, [&] {
    for (int i = 3; i < 5; ++i) {
      sim.Schedule(far, [&order, i] { order.push_back(i); });
    }
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sim.Now(), far);
}

TEST(CalendarQueueTest, ScheduleNowDuringDispatchRunsAfterQueuedPeers) {
  // Events appended at `now` during dispatch must run after records
  // already queued at the same timestamp — regardless of whether the
  // peers came from the active FIFO, a sorted-near group, or a bucket.
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(SimTime{10}, [&] {
    order.push_back(0);
    sim.ScheduleNow([&] { order.push_back(3); });
  });
  sim.Schedule(SimTime{10}, [&] { order.push_back(1); });
  sim.Schedule(SimTime{10}, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CalendarQueueTest, RunUntilStopsAtTierBoundaries) {
  // RunUntil limits that land exactly on, between, and beyond queued
  // timestamps — including one past the calendar window so the queue
  // must rebase mid-run — never run a late event early.
  Simulation sim;
  std::vector<std::int64_t> ran;
  const std::int64_t ts[] = {100, 128, 129, 2'000'000, 2'097'153, 9'000'000};
  for (std::int64_t t : ts) {
    sim.Schedule(SimTime{t}, [&ran, t] { ran.push_back(t); });
  }
  sim.RunUntil(SimTime{100});  // exactly the first event
  EXPECT_EQ(ran, (std::vector<std::int64_t>{100}));
  sim.RunUntil(SimTime{128});  // bucket-width boundary
  EXPECT_EQ(ran, (std::vector<std::int64_t>{100, 128}));
  sim.RunUntil(SimTime{2'000'000});
  EXPECT_EQ(ran, (std::vector<std::int64_t>{100, 128, 129, 2'000'000}));
  sim.Run();
  EXPECT_EQ(ran.back(), 9'000'000);
  EXPECT_EQ(sim.Now(), SimTime{9'000'000});
}

TEST(CalendarQueueTest, DrainedQueueReanchorsWindow) {
  // After the queue drains completely, the next schedule far in the
  // future must re-anchor the calendar window at its timestamp instead
  // of funneling everything into the far heap through a stale window.
  Simulation sim;
  int ran = 0;
  sim.Schedule(SimTime{50}, [&] { ++ran; });
  sim.Run();
  for (int burst = 1; burst <= 3; ++burst) {
    const std::int64_t base = burst * 100'000'000LL;  // 100ms apart
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      sim.Schedule(SimTime{base + i * 97}, [&order, i] { order.push_back(i); });
    }
    sim.Run();
    ASSERT_EQ(order.size(), 100u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
    ++ran;
  }
  EXPECT_EQ(ran, 4);
}

// ------------------------------------------------ timer memory retention
//
// The seed engine held every guarded timer in its priority queue until
// the timer's timestamp arrived, even when the wait had long since been
// claimed — 10k abandoned 30s timeouts meant 10k dead closures pinned
// for 30 virtual seconds. The calendar queue cancels the pending record
// at claim time and reclaims cancelled records in bulk sweeps, so live
// state tracks live (unclaimed) waits.

TEST(TimerReclamationTest, AbandonedTimeoutsDoNotAccumulate) {
  Simulation sim;
  constexpr int kOps = 10'000;
  constexpr std::size_t kLiveBound = 1024;  // ~sweep threshold, not ~kOps
  std::size_t max_live_records = 0;
  std::size_t max_live_waits = 0;
  for (int i = 0; i < kOps; ++i) {
    // Arm a long guarded timeout, then immediately claim the wait from
    // the "fulfilled" side — the common RPC case where the reply beats
    // the timer. The timer record is now garbage for 30 virtual seconds.
    WaitState* st = sim.wait_pool().Acquire();
    sim.ScheduleTimer(sim.Now() + Seconds(30), st, WaitState::Why::kTimeout);
    ASSERT_TRUE(st->TryFire(WaitState::Why::kFulfilled));
    sim.wait_pool().Release(st);
    const Simulation::EngineStats stats = sim.engine_stats();
    max_live_records = std::max(max_live_records, stats.live_records);
    max_live_waits = std::max(max_live_waits, stats.live_waits);
  }
  // Live state must be bounded by the sweep threshold, not by the number
  // of abandoned timers. (The seed engine would sit at ~kOps here.)
  EXPECT_LT(max_live_records, kLiveBound);
  EXPECT_LE(max_live_waits, 1u);
  const Simulation::EngineStats stats = sim.engine_stats();
  EXPECT_LT(stats.record_capacity, kLiveBound);  // arena never grew past it
  EXPECT_LT(stats.wait_capacity, 128u);
  // Nothing left to run: every timer was cancelled and swept or will be
  // discarded on pop without executing.
  EXPECT_EQ(sim.Run(), 0u);
  EXPECT_EQ(sim.engine_stats().queued_events, 0u);
  EXPECT_EQ(sim.engine_stats().live_records, 0u);
}

TEST(TimerReclamationTest, MixedLiveAndAbandonedTimersKeepLiveOnes) {
  // Interleave abandoned timeouts with timers that must still fire:
  // sweeps reclaim only cancelled records.
  Simulation sim;
  int fired = 0;
  for (int i = 0; i < 500; ++i) {
    WaitState* abandoned = sim.wait_pool().Acquire();
    sim.ScheduleTimer(sim.Now() + Seconds(7), abandoned,
                      WaitState::Why::kTimeout);
    ASSERT_TRUE(abandoned->TryFire(WaitState::Why::kFulfilled));
    sim.wait_pool().Release(abandoned);
    sim.After(Microseconds(i + 1), [&fired] { ++fired; });
  }
  sim.Run();
  EXPECT_EQ(fired, 500);
  EXPECT_EQ(sim.engine_stats().live_records, 0u);
}

}  // namespace
}  // namespace ods::sim

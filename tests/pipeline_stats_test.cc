// Cross-checks the PM write engine's own accounting (PipelineStats on
// tp::PmLogDevice / pm::PmWritePipeline) against the fabric's observed
// packet counters. The two are maintained in different layers — the
// pipeline counts what it decided to do (issue, coalesce, piggyback),
// the fabric counts what actually hit the wire — so agreement here means
// the bench numbers built from either source describe the same traffic.
//
// The arithmetic being verified (FabricConfig defaults, mtu = 512):
//   * every mirrored write is TWO chained RDMA ops (primary + mirror),
//     each counting once in rdma_write_ops;
//   * a chain's packet count is the sum over its segments of
//     ceil(len/mtu);
//   * the piggybacked append is one chain of [data, 16B control], so
//     2 * (ceil(n/mtu) + 1) packets per append;
//   * the ablation/wrap path issues data through the pipeline and then
//     writes the control block separately: 2*ceil(n/mtu) + 2 packets;
//   * ops round-robin over the two healthy rails, so mirror pairs split
//     evenly and the per-rail packet counters balance exactly.
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "nsk/cluster.h"
#include "pm/client.h"
#include "pm/manager.h"
#include "pm/npmu.h"
#include "sim/simulation.h"
#include "tp/log_device.h"

namespace ods {
namespace {

using sim::Task;

class TestProcess : public nsk::NskProcess {
 public:
  using Body = std::function<Task<void>(TestProcess&)>;
  TestProcess(nsk::Cluster& cluster, int cpu, std::string name, Body body)
      : NskProcess(cluster, cpu, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

struct FabricSnapshot {
  std::uint64_t write_ops = 0;
  std::uint64_t write_packets = 0;
  std::uint64_t read_packets = 0;
  std::uint64_t rail0 = 0;
  std::uint64_t rail1 = 0;

  static FabricSnapshot Take(const net::Fabric& f) {
    return {f.rdma_write_ops(), f.write_packets(), f.read_packets(),
            f.rail_packets(0), f.rail_packets(1)};
  }
};

// Packets for one leg of `n` bytes at the default 512-byte MTU.
constexpr std::uint64_t Pkts(std::uint64_t n) { return (n + 511) / 512; }

std::vector<std::byte> Fill(std::size_t n, std::uint8_t v) {
  return std::vector<std::byte>(n, static_cast<std::byte>(v));
}

// PMM pair + mirrored NPMUs, probe process on CPU 2 (pm_test's rig).
struct PipelineStatsFixture : ::testing::Test {
  PipelineStatsFixture()
      : sim(23), cluster(sim, MakeConfig()),
        npmu_a(cluster.fabric(), "npmu-a"),
        npmu_b(cluster.fabric(), "npmu-b") {
    auto& pmm_p = sim.AdoptStopped<pm::PmManager>(
        cluster, 0, "$PMM", "$PMM-P", pm::PmDevice(npmu_a),
        pm::PmDevice(npmu_b), "$PM1");
    auto& pmm_b = sim.AdoptStopped<pm::PmManager>(
        cluster, 1, "$PMM", "$PMM-B", pm::PmDevice(npmu_a),
        pm::PmDevice(npmu_b), "$PM1");
    pmm_p.SetPeer(&pmm_b);
    pmm_b.SetPeer(&pmm_p);
    pmm_p.Start();
    pmm_b.Start();
  }

  ~PipelineStatsFixture() override { sim.Shutdown(); }

  static nsk::ClusterConfig MakeConfig() {
    nsk::ClusterConfig c;
    c.num_cpus = 4;
    return c;
  }

  sim::Simulation sim;
  nsk::Cluster cluster;
  pm::Npmu npmu_a;
  pm::Npmu npmu_b;
};

TEST_F(PipelineStatsFixture, PiggybackedAppendsMatchFabricPacketCounts) {
  const std::uint64_t sizes[] = {100, 512, 513, 4096, 8000};
  bool done = false;
  sim.Adopt<TestProcess>(cluster, 2, "probe",
                         [&](TestProcess& self) -> Task<void> {
    tp::PmLogConfig cfg;
    cfg.region_name = "audit-piggy";
    cfg.region_bytes = 1 << 20;
    cfg.piggyback_control = true;
    tp::PmLogDevice dev(cfg);
    EXPECT_TRUE((co_await dev.Open(self)).ok());

    const auto before = FabricSnapshot::Take(cluster.fabric());
    std::uint64_t expect_packets = 0;
    for (std::uint64_t n : sizes) {
      EXPECT_TRUE((co_await dev.Append(self, Fill(n, 0x5A))).ok());
      // One chain per mirror: data segment + 16-byte control segment.
      expect_packets += 2 * (Pkts(n) + 1);
    }
    const auto after = FabricSnapshot::Take(cluster.fabric());

    const PipelineStats* stats = dev.pipeline_stats();
    EXPECT_NE(stats, nullptr);
    if (stats == nullptr) co_return;
    EXPECT_EQ(stats->piggybacked.value(), std::size(sizes));
    EXPECT_EQ(stats->issued.value(), 0u);  // pipeline never engaged
    EXPECT_EQ(stats->coalesced.value(), 0u);
    EXPECT_EQ(stats->depth.count(), 0u);

    EXPECT_EQ(after.write_ops - before.write_ops, 2 * std::size(sizes));
    EXPECT_EQ(after.write_packets - before.write_packets, expect_packets);
    EXPECT_EQ(after.read_packets, before.read_packets);  // write-only phase
    // Primary and mirror chains of one append are the same size and land
    // on alternating rails, so the rail counters advance in lockstep.
    EXPECT_EQ(after.rail0 - before.rail0, expect_packets / 2);
    EXPECT_EQ(after.rail1 - before.rail1, expect_packets / 2);
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(PipelineStatsFixture, AblationPathIssuesDataThenControlSeparately) {
  const std::uint64_t sizes[] = {100, 4096};
  bool done = false;
  sim.Adopt<TestProcess>(cluster, 2, "probe",
                         [&](TestProcess& self) -> Task<void> {
    tp::PmLogConfig cfg;
    cfg.region_name = "audit-ablate";
    cfg.region_bytes = 1 << 20;
    cfg.piggyback_control = false;  // the seed's serialized ordering
    tp::PmLogDevice dev(cfg);
    EXPECT_TRUE((co_await dev.Open(self)).ok());

    const auto before = FabricSnapshot::Take(cluster.fabric());
    std::uint64_t expect_packets = 0;
    for (std::uint64_t n : sizes) {
      EXPECT_TRUE((co_await dev.Append(self, Fill(n, 0x6B))).ok());
      // Data via the pipeline (one issue, both mirrors), then the control
      // block as its own mirrored write.
      expect_packets += 2 * Pkts(n) + 2;
    }
    const auto after = FabricSnapshot::Take(cluster.fabric());

    const PipelineStats* stats = dev.pipeline_stats();
    EXPECT_NE(stats, nullptr);
    if (stats == nullptr) co_return;
    EXPECT_EQ(stats->piggybacked.value(), 0u);
    EXPECT_EQ(stats->issued.value(), std::size(sizes));
    EXPECT_EQ(stats->coalesced.value(), 0u);
    EXPECT_EQ(stats->depth.count(), std::size(sizes));

    // Per append: 2 data ops + 2 control ops.
    EXPECT_EQ(after.write_ops - before.write_ops, 4 * std::size(sizes));
    EXPECT_EQ(after.write_packets - before.write_packets, expect_packets);
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(PipelineStatsFixture, RingWrapFallsBackToPipelinedExtents) {
  bool done = false;
  sim.Adopt<TestProcess>(cluster, 2, "probe",
                         [&](TestProcess& self) -> Task<void> {
    tp::PmLogConfig cfg;
    cfg.region_name = "audit-wrap";
    cfg.region_bytes = 4096;  // tiny ring so the second append wraps
    cfg.piggyback_control = true;
    tp::PmLogDevice dev(cfg);
    EXPECT_TRUE((co_await dev.Open(self)).ok());

    const auto before = FabricSnapshot::Take(cluster.fabric());
    // Fits: piggybacked single chain.
    EXPECT_TRUE((co_await dev.Append(self, Fill(3000, 1))).ok());
    // Wraps (3000 + 2000 > 4096): extents of 1096 and 904 bytes go
    // through the pipeline (non-adjacent physical offsets, so two
    // issues), then the control block is written separately.
    EXPECT_TRUE((co_await dev.Append(self, Fill(2000, 2))).ok());
    const auto after = FabricSnapshot::Take(cluster.fabric());
    EXPECT_EQ(dev.tail(), 5000u);

    const PipelineStats* stats = dev.pipeline_stats();
    EXPECT_NE(stats, nullptr);
    if (stats == nullptr) co_return;
    EXPECT_EQ(stats->piggybacked.value(), 1u);
    EXPECT_EQ(stats->issued.value(), 2u);
    EXPECT_EQ(stats->coalesced.value(), 0u);

    // Append 1: one chain per mirror. Append 2: two pipeline issues plus
    // the control write, each mirrored.
    EXPECT_EQ(after.write_ops - before.write_ops, 2u + 6u);
    const std::uint64_t expect_packets = 2 * (Pkts(3000) + 1) +  // piggyback
                                         2 * Pkts(1096) +        // extent A
                                         2 * Pkts(904) +         // extent B
                                         2;                      // control
    EXPECT_EQ(after.write_packets - before.write_packets, expect_packets);
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(PipelineStatsFixture, CoalescedSubmitsCollapseIntoOneFabricOp) {
  bool done = false;
  sim.Adopt<TestProcess>(cluster, 2, "probe",
                         [&](TestProcess& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto region = co_await client.Create("coalesce", 64 * 1024);
    EXPECT_TRUE(region.ok()) << region.status().ToString();
    if (!region.ok()) co_return;

    PipelineStats stats;
    pm::PmWritePipeline pipe(*region,
                             pm::PmWritePipeline::Config{4, true, 256 << 10},
                             &stats);
    const auto before = FabricSnapshot::Take(cluster.fabric());
    // Three adjacent submits merge into one staged 768-byte op...
    EXPECT_TRUE((co_await pipe.Submit(0, Fill(256, 1))).ok());
    EXPECT_TRUE((co_await pipe.Submit(256, Fill(256, 2))).ok());
    EXPECT_TRUE((co_await pipe.Submit(512, Fill(256, 3))).ok());
    // ...which a non-adjacent submit flushes to the wire.
    EXPECT_TRUE((co_await pipe.Submit(4096, Fill(100, 4))).ok());
    EXPECT_TRUE((co_await pipe.Drain()).ok());
    const auto after = FabricSnapshot::Take(cluster.fabric());

    EXPECT_EQ(stats.coalesced.value(), 2u);
    EXPECT_EQ(stats.issued.value(), 2u);
    EXPECT_EQ(stats.depth.count(), 2u);

    EXPECT_EQ(after.write_ops - before.write_ops, 4u);  // 2 issues x mirrors
    EXPECT_EQ(after.write_packets - before.write_packets,
              2 * Pkts(768) + 2 * Pkts(100));
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace ods

// Scenario-suite tests (workload/scenario.h):
//
//   * golden determinism — every scenario, run twice with the same seed,
//     exports byte-identical Chrome traces and metrics snapshots (the
//     same regression net trace_test pins for hot-stock);
//   * fleet-growth purity — growing the OLTP fleet never perturbs the
//     draw sequences (FNV digests) of the drivers that were already
//     there;
//   * contention — hot Zipfian skew must actually queue on the lock
//     manager (waits and a populated wait-time histogram), uniform must
//     not;
//   * units — the Zipfian generator's shape and single-draw discipline,
//     and WindowedLatency's timestamp classification.
#include "workload/scenario.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/trace.h"
#include "sim/simulation.h"
#include "workload/rig.h"

namespace ods::workload {
namespace {

RigConfig SmallScenarioRig() {
  RigConfig cfg;
  cfg.num_cpus = 4;
  cfg.num_files = 2;
  cfg.partitions_per_file = 2;
  cfg.num_adps = 2;
  cfg.log_medium = tp::LogMedium::kPm;
  cfg.pm_device = PmDeviceKind::kNpmuPair;
  cfg.pm_tcb = true;
  return cfg;
}

// Runs `scenario(rig)` on a fresh traced sim and returns the exported
// Chrome trace plus the metrics snapshot.
template <typename Fn>
std::pair<std::string, std::string> RunTraced(std::uint64_t seed,
                                              Fn scenario) {
  sim::Simulation sim(seed);
  Tracer tracer;
  tracer.Enable(1u << 15);
  sim.set_tracer(&tracer);
  std::string metrics;
  {
    Rig rig(sim, SmallScenarioRig());
    sim.RunFor(sim::Seconds(1));
    scenario(rig);
    metrics = sim.metrics().Snapshot().Serialize();
  }
  sim.set_tracer(nullptr);
  return {tracer.ToChromeJson(), metrics};
}

OltpConfig SmallOltp() {
  OltpConfig cfg;
  cfg.drivers = 4;
  cfg.txns_per_driver = 20;
  cfg.keys_per_file = 100;
  cfg.theta = 0.9;
  return cfg;
}

// ---------------------------------------------------------------------------
// Golden determinism, scenario by scenario

TEST(ScenarioDeterminism, ZipfianOltpRunsExportIdenticalBytes) {
  auto run = [] {
    return RunTraced(5, [](Rig& rig) { (void)RunZipfianOltp(rig, SmallOltp()); });
  };
  const auto a = run();
  const auto b = run();
  ASSERT_FALSE(a.first.empty());
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(ScenarioDeterminism, ScanMixRunsExportIdenticalBytes) {
  ScanMixConfig cfg;
  cfg.writers = 2;
  cfg.writer_txns = 10;
  cfg.scanners = 1;
  cfg.scans_per_scanner = 3;
  cfg.keys_per_file = 80;
  auto run = [&] {
    return RunTraced(6, [&](Rig& rig) { (void)RunScanMix(rig, cfg); });
  };
  const auto a = run();
  const auto b = run();
  ASSERT_FALSE(a.first.empty());
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(ScenarioDeterminism, FlashCrowdRunsExportIdenticalBytes) {
  FlashCrowdConfig cfg;
  cfg.fleet.drivers = 6;
  cfg.fleet.arrival_rate_hz = 8.0;
  cfg.fleet.open_loop_duration = sim::Seconds(2);
  cfg.fleet.spike_start = sim::Milliseconds(800);
  cfg.fleet.spike_duration = sim::Milliseconds(400);
  auto run = [&] {
    FlashCrowdResult result;
    auto traced =
        RunTraced(7, [&](Rig& rig) { result = RunFlashCrowd(rig, cfg); });
    return std::pair(std::move(traced), std::move(result));
  };
  const auto a = run();
  const auto b = run();
  ASSERT_FALSE(a.first.first.empty());
  EXPECT_EQ(a.first.first, b.first.first);
  EXPECT_EQ(a.first.second, b.first.second);
  // The windowed series is part of the deliverable: identical too.
  ASSERT_EQ(a.second.windows.size(), b.second.windows.size());
  for (std::size_t i = 0; i < a.second.windows.size(); ++i) {
    EXPECT_EQ(a.second.windows[i].count, b.second.windows[i].count) << i;
    EXPECT_EQ(a.second.windows[i].p99_ms, b.second.windows[i].p99_ms) << i;
  }
}

TEST(ScenarioDeterminism, MultiTenantRunsExportIdenticalBytes) {
  MultiTenantConfig cfg;
  cfg.tenants.clear();
  cfg.tenants.push_back(TenantSpec{1, 1, 32, 1024});
  cfg.tenants.push_back(TenantSpec{2, 8, 64, 256});
  auto run = [&] {
    return RunTraced(8, [&](Rig& rig) { (void)RunMultiTenant(rig, cfg); });
  };
  const auto a = run();
  const auto b = run();
  ASSERT_FALSE(a.first.empty());
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ---------------------------------------------------------------------------
// Fleet growth never perturbs existing drivers' draws

TEST(ScenarioDeterminism, GrowingTheFleetPreservesDriverDigests) {
  auto digests = [](int drivers) {
    sim::Simulation sim(9);
    Rig rig(sim, SmallScenarioRig());
    sim.RunFor(sim::Seconds(1));
    OltpConfig cfg = SmallOltp();
    cfg.drivers = drivers;
    OltpResult r = RunZipfianOltp(rig, cfg);
    std::vector<std::uint64_t> d;
    for (const auto& s : r.drivers) d.push_back(s.draw_digest);
    return d;
  };
  const auto small = digests(3);
  const auto big = digests(6);
  ASSERT_EQ(small.size(), 3u);
  ASSERT_EQ(big.size(), 6u);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i], big[i]) << "driver " << i
                                << " draws perturbed by fleet growth";
  }
  // And the new drivers are genuinely distinct streams.
  EXPECT_NE(big[3], big[0]);
}

// ---------------------------------------------------------------------------
// Contention: the skew knob must reach the lock manager

TEST(ScenarioContention, HotSkewQueuesOnLocks) {
  auto run = [](double theta) {
    sim::Simulation sim(10);
    Rig rig(sim, SmallScenarioRig());
    sim.RunFor(sim::Seconds(1));
    OltpConfig cfg;
    cfg.drivers = 8;
    cfg.txns_per_driver = 40;
    cfg.keys_per_file = 200;
    cfg.theta = theta;
    return RunZipfianOltp(rig, cfg);
  };
  const OltpResult uniform = run(0.0);
  const OltpResult hot = run(0.95);
  EXPECT_GT(hot.TotalCommitted(), 0u);
  // Non-trivial lock wait-time histogram at high skew: queued waits
  // happened and took measurable sim-time.
  EXPECT_GT(hot.locks.waits, uniform.locks.waits);
  EXPECT_GT(hot.locks.wait_time.count(), 0u);
  EXPECT_GT(hot.locks.wait_time.Percentile(0.99), 0u);
  EXPECT_GT(hot.WaitsPerTxn(), 2.0 * uniform.WaitsPerTxn());
}

TEST(ScenarioContention, ScansInterfereWithWriters) {
  auto run = [](int scanners) {
    sim::Simulation sim(12);
    Rig rig(sim, SmallScenarioRig());
    sim.RunFor(sim::Seconds(1));
    ScanMixConfig cfg;
    cfg.writers = 3;
    cfg.writer_txns = 15;
    cfg.scanners = scanners;
    cfg.scans_per_scanner = 4;
    cfg.keys_per_file = 120;
    return RunScanMix(rig, cfg);
  };
  const ScanMixResult alone = run(0);
  const ScanMixResult mixed = run(2);
  EXPECT_GT(mixed.scans_completed, 0u);
  EXPECT_GT(mixed.records_scanned, 0u);
  EXPECT_GT(alone.writer_committed, 0u);
  // Strict 2PL: scan shared locks must be visible to writers as waits.
  EXPECT_GT(mixed.locks.waits, alone.locks.waits);
}

// ---------------------------------------------------------------------------
// Zipfian generator unit tests

TEST(Zipfian, HotSkewConcentratesAndUniformDoesNot) {
  constexpr std::uint64_t kN = 1000;
  constexpr int kDraws = 20000;
  ZipfianGenerator hot(kN, 0.99);
  ZipfianGenerator flat(kN, 0.0);
  Rng rng = Rng::ForStream(3, 0);
  std::vector<int> hot_counts(kN, 0), flat_counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t h = hot.Next(rng);
    const std::uint64_t f = flat.Next(rng);
    ASSERT_LT(h, kN);
    ASSERT_LT(f, kN);
    ++hot_counts[h];
    ++flat_counts[f];
  }
  // θ=0.99 on 1000 keys: rank 0 alone takes a large share, the top 10
  // take most of a third; uniform spreads.
  int hot_top10 = 0;
  for (int r = 0; r < 10; ++r) hot_top10 += hot_counts[r];
  EXPECT_GT(hot_counts[0], kDraws / 20) << "rank 0 share too small for θ=0.99";
  EXPECT_GT(hot_top10, kDraws / 4);
  EXPECT_GT(hot_counts[0], hot_counts[1]);
  int flat_max = 0;
  for (int c : flat_counts) flat_max = std::max(flat_max, c);
  EXPECT_LT(flat_max, 3 * kDraws / static_cast<int>(kN))
      << "uniform draw concentrated unexpectedly";
}

TEST(Zipfian, NextDrawsExactlyOneVariateRegardlessOfTheta) {
  // Positional stability across configurations: a driver's Nth draw
  // happens at the same stream position whatever the skew, so changing
  // θ never shifts unrelated randomness.
  ZipfianGenerator hot(500, 0.99);
  ZipfianGenerator flat(500, 0.0);
  Rng a = Rng::ForStream(4, 1);
  Rng b = Rng::ForStream(4, 1);
  for (int i = 0; i < 32; ++i) {
    (void)hot.Next(a);
    (void)flat.Next(b);
  }
  EXPECT_EQ(a.Next(), b.Next());
}

// ---------------------------------------------------------------------------
// WindowedLatency unit tests

TEST(WindowedLatencyTest, ClassifiesByTimestampAndClamps) {
  WindowedLatency w(/*start_ns=*/1000, /*width_ns=*/100, /*num_windows=*/3);
  w.Record(1000, 11);  // window 0
  w.Record(1099, 12);  // window 0
  w.Record(1100, 21);  // window 1
  w.Record(1299, 31);  // window 2
  w.Record(50, 41);    // before start: clamps into window 0
  w.Record(9999, 51);  // past the end: clamps into the last window
  ASSERT_EQ(w.windows().size(), 3u);
  EXPECT_EQ(w.windows()[0].count(), 3u);
  EXPECT_EQ(w.windows()[1].count(), 1u);
  EXPECT_EQ(w.windows()[2].count(), 2u);
  EXPECT_EQ(w.window_start_ns(0), 1000);
  EXPECT_EQ(w.window_start_ns(2), 1200);
}

}  // namespace
}  // namespace ods::workload

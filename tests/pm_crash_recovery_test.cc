// Targeted crash-recovery regressions for the PMM metadata-commit
// protocol, driven by the FaultPlan (sim/fault_plan.h). Each test pins
// one of the recovery bugs the crash sweep exposed:
//
//  * delete rollback: a delete whose metadata commit fails must restore
//    the in-memory region record and re-reserve its extent, or a later
//    create re-allocates the extent and durably clobbers a region whose
//    delete the client was told FAILED;
//  * mid-commit promotion: when the volume primary dies during a commit,
//    the demotion must be re-committed at a fresh epoch before the
//    operation reports success, or recovery resurrects the stale device
//    as a live mirror and serves pre-promotion data;
//  * commit serialization: the background health commit spawned by
//    kPmMirrorDown must not interleave with a request handler's commit
//    at co_await points (same slot + epoch -> torn double-write);
//
// plus sweeps of create/delete/resilver interrupted (PMM halted and
// later restarted) at every commit/resilver co_await boundary.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "nsk/cluster.h"
#include "pm/client.h"
#include "pm/manager.h"
#include "pm/metadata.h"
#include "pm/npmu.h"
#include "sim/fault_plan.h"
#include "sim/simulation.h"

namespace ods::pm {
namespace {

using sim::Microseconds;
using sim::Milliseconds;
using sim::Seconds;
using sim::Task;

class TestProcess : public nsk::NskProcess {
 public:
  using Body = std::function<Task<void>(TestProcess&)>;
  TestProcess(nsk::Cluster& cluster, int cpu, std::string name, Body body)
      : NskProcess(cluster, cpu, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

std::vector<std::byte> Fill(std::size_t n, std::uint8_t v) {
  return std::vector<std::byte>(n, static_cast<std::byte>(v));
}

// PM rig with a FaultPlan installed: 4-CPU cluster, two hardware NPMUs,
// PMM pair on CPUs 0/1. Plain struct (not a gtest fixture) so the
// interruption sweeps can build a fresh rig per injection label.
struct Rig {
  explicit Rig(nsk::ClusterConfig cfg = MakeConfig())
      : sim(11), cluster(sim, cfg),
        npmu_a(cluster.fabric(), "npmu-a"),
        npmu_b(cluster.fabric(), "npmu-b") {
    pmm_p = &sim.AdoptStopped<PmManager>(cluster, 0, "$PMM", "$PMM-P",
                                         PmDevice(npmu_a), PmDevice(npmu_b),
                                         "$PM1");
    pmm_b = &sim.AdoptStopped<PmManager>(cluster, 1, "$PMM", "$PMM-B",
                                         PmDevice(npmu_a), PmDevice(npmu_b),
                                         "$PM1");
    pmm_p->SetPeer(pmm_b);
    pmm_b->SetPeer(pmm_p);
    sim.set_fault_plan(&plan);
    pmm_p->Start();
    pmm_b->Start();
  }

  ~Rig() {
    sim.Shutdown();
    sim.set_fault_plan(nullptr);
  }

  static nsk::ClusterConfig MakeConfig() {
    nsk::ClusterConfig c;
    c.num_cpus = 4;
    return c;
  }

  // Halts whichever member is primary; it returns later as the backup.
  // Callable from a FaultPlan action (i.e. from inside the victim's own
  // commit fiber): Kill() unwinds at the current sim time, not inline.
  void KillPrimaryAndRestartLater(sim::SimDuration restart_after = Seconds(1)) {
    PmManager* victim = pmm_p->is_primary() ? pmm_p : pmm_b;
    victim->Kill();
    sim.After(restart_after, [victim] {
      if (!victim->alive()) victim->Restart();
    });
  }

  sim::Simulation sim;
  nsk::Cluster cluster;
  Npmu npmu_a;
  Npmu npmu_b;
  PmManager* pmm_p;
  PmManager* pmm_b;
  sim::FaultPlan plan;
};

// ------------------------------------------------ bug A: delete rollback

TEST(PmCrashRecovery, FailedDeleteRollsBackAndLaterCreateCannotClobber) {
  Rig rig;
  bool done = false;
  rig.sim.Adopt<TestProcess>(
      rig.cluster, 2, "app", [&](TestProcess& self) -> Task<void> {
        PmClient client(self, "$PMM");
        auto r1 = co_await client.Create("r1", 16 * 1024);
        EXPECT_TRUE(r1.ok()) << r1.status().ToString();
        if (!r1.ok()) co_return;
        EXPECT_TRUE((co_await r1->Write(0, Fill(4096, 0xAA))).ok());

        // Transient dual-device outage: the delete's metadata commit can
        // land nowhere, so the PMM must fail the delete AND roll back.
        rig.npmu_a.Fail();
        rig.npmu_b.Fail();
        auto st = co_await client.Delete("r1");
        EXPECT_FALSE(st.ok());
        rig.npmu_a.Repair();
        rig.npmu_b.Repair();

        // The failed delete's extent must not be handed to a new region:
        // first-fit would reuse r1's bytes if the rollback forgot to
        // re-reserve them.
        auto r2 = co_await client.Create("r2", 16 * 1024);
        EXPECT_TRUE(r2.ok()) << r2.status().ToString();
        if (!r2.ok()) co_return;
        EXPECT_TRUE((co_await r2->Write(0, Fill(4096, 0xBB))).ok());

        auto r1b = co_await client.Open("r1");
        EXPECT_TRUE(r1b.ok())
            << "region with a FAILED delete vanished: "
            << r1b.status().ToString();
        if (r1b.ok()) {
          EXPECT_NE(r1b->handle().nva, r2->handle().nva);
          auto back = co_await r1b->Read(0, 4096);
          EXPECT_TRUE(back.ok());
          if (back.ok()) {
            EXPECT_EQ((*back)[0], std::byte{0xAA});
            EXPECT_EQ((*back)[4095], std::byte{0xAA});
          }
        }
        done = true;
      });
  rig.sim.Run();
  EXPECT_TRUE(done);
}

// --------------------------------------- bug B: mid-commit promotion

TEST(PmCrashRecovery, MidCommitPromotionIsDurableAndStaleMirrorStaysDead) {
  Rig rig;
  bool done = false;
  rig.sim.Adopt<TestProcess>(
      rig.cluster, 2, "app", [&](TestProcess& self) -> Task<void> {
        PmClient client(self, "$PMM");
        auto r1 = co_await client.Create("r1", 16 * 1024);
        EXPECT_TRUE(r1.ok());
        if (!r1.ok()) co_return;
        EXPECT_TRUE((co_await r1->Write(0, Fill(4096, 0xA1))).ok());

        // Fail the volume primary at the exact slot-write intent of the
        // next commit: the commit's survivor-side image was encoded with
        // the OLD roles and mirror_up=true.
        rig.plan.ArmAtNext("commit:pre-primary-write",
                           [&](const sim::FaultSite&) { rig.npmu_a.Fail(); });
        auto r2 = co_await client.Create("r2", 16 * 1024);
        EXPECT_TRUE(r2.ok()) << r2.status().ToString();

        auto info = co_await client.Info();
        EXPECT_TRUE(info.ok());
        if (info.ok()) {
          EXPECT_FALSE(info->mirror_up);
        }

        // Post-promotion write through a fresh handle: lands only on the
        // survivor. Deliberately no device-failure report here — nothing
        // else may commit between the promotion and the takeover below.
        auto r1b = co_await client.Open("r1");
        EXPECT_TRUE(r1b.ok());
        if (!r1b.ok()) co_return;
        EXPECT_FALSE(r1b->handle().mirror_up);
        EXPECT_TRUE((co_await r1b->Write(0, Fill(4096, 0xA2))).ok());

        // The dead device returns holding stale data, and the PMM pair
        // fails over, re-deriving truth from the durable slots.
        rig.npmu_a.Repair();
        rig.KillPrimaryAndRestartLater();

        auto info2 = co_await client.Info();
        EXPECT_TRUE(info2.ok());
        if (info2.ok()) {
          EXPECT_FALSE(info2->mirror_up)
              << "recovery resurrected the stale pre-promotion mirror";
        }

        // A read must never be served from the stale mirror: with the
        // survivor down it must fail rather than return pre-promotion
        // data.
        rig.npmu_b.Fail();
        auto r1c = co_await client.Open("r1");
        if (r1c.ok()) {
          auto back = co_await r1c->Read(0, 4096);
          if (back.ok()) {
            EXPECT_EQ((*back)[0], std::byte{0xA2})
                << "read served stale pre-promotion mirror data";
          }
        }
        rig.npmu_b.Repair();
        done = true;
      });
  rig.sim.Run();
  EXPECT_TRUE(done);
}

// ------------------------------------- bug C: commit serialization

TEST(PmCrashRecovery, BackgroundHealthCommitDoesNotInterleaveWithHandler) {
  // Slow write acks stretch the commit's in-flight window to 2ms so an
  // unserialized background commit deterministically overlaps the
  // handler's commit (encode + write of the same slot/epoch).
  nsk::ClusterConfig cfg = Rig::MakeConfig();
  cfg.fabric.ack_latency = Milliseconds(2);
  Rig rig(cfg);

  // Miniature invariant I1: every acked metadata-slot write must decode
  // and carry a strictly higher epoch than anything previously acked on
  // that device. An interleaved double-write acks one epoch twice (or
  // tears the slot).
  std::map<std::uint32_t, std::uint64_t> acked_epoch;
  std::vector<std::string> violations;
  rig.plan.SetObserver([&](const sim::FaultSite& s) {
    if (s.kind != sim::FaultSiteKind::kRdmaWriteComplete) return;
    if (s.args.size() < 2 || s.args[0] + s.args[1] > kMetadataBytes) return;
    const std::uint32_t ep = static_cast<std::uint32_t>(
        std::stoul(s.label.substr(std::strlen("write-ack:ep"))));
    Npmu* dev = ep == rig.npmu_a.id().value
                    ? &rig.npmu_a
                    : (ep == rig.npmu_b.id().value ? &rig.npmu_b : nullptr);
    if (dev == nullptr) return;
    const auto slot = s.args[0] / kMetadataCopyBytes;
    auto img = DecodeSlot(std::span<const std::byte>(
        dev->metadata_memory() + slot * kMetadataCopyBytes,
        kMetadataCopyBytes));
    if (!img) {
      violations.push_back("acked metadata write on " + dev->name() +
                           " does not decode (torn double-write)");
      return;
    }
    auto it = acked_epoch.find(ep);
    if (it != acked_epoch.end() && img->epoch <= it->second) {
      violations.push_back("epoch " + std::to_string(img->epoch) +
                           " acked on " + dev->name() + " after epoch " +
                           std::to_string(it->second));
      return;
    }
    acked_epoch[ep] = img->epoch;
  });

  bool created = false;
  // Reporter: sets up a region, then at the 1s barrier reports the
  // mirror down — HandleMirrorDown replies immediately and persists the
  // health change in a background fiber.
  rig.sim.Adopt<TestProcess>(
      rig.cluster, 2, "reporter", [&](TestProcess& self) -> Task<void> {
        PmClient client(self, "$PMM");
        auto r1 = co_await client.Create("r1", 16 * 1024);
        EXPECT_TRUE(r1.ok());
        co_await self.Sleep(
            sim::SimDuration{Seconds(1).ns - self.sim().Now().ns});
        Serializer s;
        s.PutU32(rig.npmu_b.id().value);
        auto rep = co_await self.Call("$PMM", kPmMirrorDown,
                                      std::move(s).Take());
        EXPECT_TRUE(rep.ok());
      });
  // Creator: its request arrives right behind the report, so its
  // handler commit races the background health commit.
  rig.sim.Adopt<TestProcess>(
      rig.cluster, 3, "creator", [&](TestProcess& self) -> Task<void> {
        co_await self.Sleep(sim::SimDuration{Seconds(1).ns +
                                             Microseconds(5).ns});
        PmClient client(self, "$PMM");
        auto r2 = co_await client.Create("r2", 16 * 1024);
        EXPECT_TRUE(r2.ok()) << r2.status().ToString();
        created = r2.ok();
      });
  rig.sim.Run();
  EXPECT_TRUE(created);
  EXPECT_EQ(violations, std::vector<std::string>{});
}

// ----------------- create/delete/resilver interrupted at each co_await

const char* const kCommitLabels[] = {
    "commit:begin",
    "commit:pre-primary-write",
    "commit:pre-mirror-write",
    "commit:post-writes",
};

void RunCreateInterruption(const std::string& label) {
  SCOPED_TRACE("halt at " + label);
  Rig rig;
  bool done = false;
  rig.sim.Adopt<TestProcess>(
      rig.cluster, 2, "app", [&](TestProcess& self) -> Task<void> {
        PmClient client(self, "$PMM");
        auto r1 = co_await client.Create("r1", 16 * 1024);
        EXPECT_TRUE(r1.ok());
        if (!r1.ok()) co_return;
        EXPECT_TRUE((co_await r1->Write(0, Fill(4096, 0x11))).ok());

        rig.plan.ArmAtNext(label, [&](const sim::FaultSite&) {
          rig.KillPrimaryAndRestartLater();
        });
        // The Call retries through takeover; the create must converge
        // (the retry either completes it or finds it already durable).
        auto r2 = co_await client.Create("r2", 16 * 1024);
        EXPECT_TRUE(r2.ok()) << r2.status().ToString();
        if (r2.ok()) {
          EXPECT_TRUE((co_await r2->Write(0, Fill(4096, 0x22))).ok());
        }

        auto r1b = co_await client.Open("r1");
        EXPECT_TRUE(r1b.ok());
        if (r1b.ok()) {
          auto back = co_await r1b->Read(0, 4096);
          EXPECT_TRUE(back.ok());
          if (back.ok()) {
            EXPECT_EQ((*back)[0], std::byte{0x11});
          }
        }
        done = true;
      });
  rig.sim.Run();
  EXPECT_TRUE(done);
}

TEST(PmCrashRecovery, CreateInterruptedAtEachCommitPoint) {
  for (const char* label : kCommitLabels) RunCreateInterruption(label);
}

void RunDeleteInterruption(const std::string& label) {
  SCOPED_TRACE("halt at " + label);
  Rig rig;
  bool done = false;
  rig.sim.Adopt<TestProcess>(
      rig.cluster, 2, "app", [&](TestProcess& self) -> Task<void> {
        PmClient client(self, "$PMM");
        auto r1 = co_await client.Create("r1", 16 * 1024);
        auto r2 = co_await client.Create("r2", 16 * 1024);
        EXPECT_TRUE(r1.ok() && r2.ok());
        if (!r1.ok() || !r2.ok()) co_return;
        EXPECT_TRUE((co_await r1->Write(0, Fill(4096, 0x11))).ok());
        EXPECT_TRUE((co_await r2->Write(0, Fill(4096, 0x22))).ok());

        rig.plan.ArmAtNext(label, [&](const sim::FaultSite&) {
          rig.KillPrimaryAndRestartLater();
        });
        auto st = co_await client.Delete("r2");
        auto r2b = co_await client.Open("r2");
        if (st.ok() || st.code() == ErrorCode::kNotFound) {
          // Committed (kNotFound = an earlier attempt's commit was
          // durable before the halt): the region must be gone.
          EXPECT_FALSE(r2b.ok());
        } else {
          // Hard failure: the rollback contract says it survives intact.
          EXPECT_TRUE(r2b.ok());
          if (r2b.ok()) {
            auto back = co_await r2b->Read(0, 4096);
            EXPECT_TRUE(back.ok());
            if (back.ok()) {
            EXPECT_EQ((*back)[0], std::byte{0x22});
          }
          }
        }

        // The bystander region is never affected.
        auto r1b = co_await client.Open("r1");
        EXPECT_TRUE(r1b.ok());
        if (r1b.ok()) {
          auto back = co_await r1b->Read(0, 4096);
          EXPECT_TRUE(back.ok());
          if (back.ok()) {
            EXPECT_EQ((*back)[0], std::byte{0x11});
          }
        }
        done = true;
      });
  rig.sim.Run();
  EXPECT_TRUE(done);
}

TEST(PmCrashRecovery, DeleteInterruptedAtEachCommitPoint) {
  for (const char* label : kCommitLabels) RunDeleteInterruption(label);
}

void RunResilverInterruption(const std::string& label) {
  SCOPED_TRACE("halt at " + label);
  Rig rig;
  bool done = false;
  rig.sim.Adopt<TestProcess>(
      rig.cluster, 2, "app", [&](TestProcess& self) -> Task<void> {
        PmClient client(self, "$PMM");
        auto r1 = co_await client.Create("r1", 64 * 1024);
        EXPECT_TRUE(r1.ok());
        if (!r1.ok()) co_return;
        EXPECT_TRUE((co_await r1->Write(0, Fill(4096, 0xA1))).ok());

        // Mirror outage + a write the mirror misses.
        rig.npmu_b.Fail();
        EXPECT_TRUE((co_await r1->Write(0, Fill(4096, 0xA2))).ok());
        rig.npmu_b.Repair();

        rig.plan.ArmAtNext(label, [&](const sim::FaultSite&) {
          rig.KillPrimaryAndRestartLater();
        });
        auto rs = co_await client.Resilver();
        if (!rs.ok()) {
          // The halt landed after takeover convergence gave up; a clean
          // retry must succeed.
          auto rs2 = co_await client.Resilver();
          EXPECT_TRUE(rs2.ok()) << rs2.status().ToString();
        }

        auto info = co_await client.Info();
        EXPECT_TRUE(info.ok());
        if (info.ok()) {
          EXPECT_TRUE(info->mirror_up);
        }

        auto r1b = co_await client.Open("r1");
        EXPECT_TRUE(r1b.ok());
        if (r1b.ok()) {
          auto back = co_await r1b->Read(0, 4096);
          EXPECT_TRUE(back.ok());
          if (back.ok()) {
            EXPECT_EQ((*back)[0], std::byte{0xA2});
          }
        }
        done = true;
      });
  rig.sim.Run();
  EXPECT_TRUE(done);
  // Mirror-consistency scrub: after a successful resilver both devices
  // hold identical bytes for the region (it is the first allocation, so
  // it sits at data offset 0).
  EXPECT_EQ(std::memcmp(rig.npmu_a.data_memory(), rig.npmu_b.data_memory(),
                        4096),
            0);
}

TEST(PmCrashRecovery, ResilverInterruptedAtEachStep) {
  const char* const kLabels[] = {
      "resilver:begin",
      "resilver:chunk",
      "resilver:metadata-clone",
      "resilver:commit",
  };
  for (const char* label : kLabels) RunResilverInterruption(label);
}

}  // namespace
}  // namespace ods::pm

// Tests for the ServerNet-like RDMA fabric: address translation, access
// control, latency model, packetized (torn) writes, CRC corruption
// detection, rail failover, link occupancy and messaging.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <vector>

#include "net/fabric.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace ods::net {
namespace {

using sim::Microseconds;
using sim::Milliseconds;
using sim::SimTime;
using sim::Task;

class LambdaProcess : public sim::Process {
 public:
  using Body = std::function<Task<void>(LambdaProcess&)>;
  LambdaProcess(sim::Simulation& sim, std::string name, Body body)
      : Process(sim, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

std::vector<std::byte> MakePattern(std::size_t n, std::uint8_t seed = 7) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131 + seed) & 0xFF);
  }
  return v;
}

struct FabricFixture : ::testing::Test {
  FabricFixture() : sim(42), fabric(sim, FabricConfig{}) {}

  // Creates a "device" endpoint exposing `mem` at nva 0x1000.
  Endpoint& MakeDevice(std::vector<std::byte>& mem,
                       std::vector<EndpointId> acl = {}) {
    Endpoint& dev = fabric.CreateEndpoint("device");
    AttWindow w;
    w.nva_base = 0x1000;
    w.length = mem.size();
    w.memory = mem.data();
    w.allowed_initiators = std::move(acl);
    EXPECT_TRUE(dev.MapWindow(std::move(w)).ok());
    return dev;
  }

  sim::Simulation sim;
  Fabric fabric;
};

// ------------------------------------------------------------ basic RDMA

TEST_F(FabricFixture, WriteLandsInDeviceMemory) {
  std::vector<std::byte> mem(4096);
  Endpoint& dev = MakeDevice(mem);
  Endpoint& host = fabric.CreateEndpoint("host");

  const auto data = MakePattern(1024);
  Status st;
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    st = co_await host.Write(self, dev.id(), 0x1000 + 128, data);
  });
  sim.Run();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(std::equal(data.begin(), data.end(), mem.begin() + 128));
}

TEST_F(FabricFixture, ReadReturnsDeviceMemory) {
  std::vector<std::byte> mem = MakePattern(2048, 3);
  Endpoint& dev = MakeDevice(mem);
  Endpoint& host = fabric.CreateEndpoint("host");

  RdmaResult res;
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    res = co_await host.Read(self, dev.id(), 0x1000 + 100, 512);
  });
  sim.Run();
  ASSERT_TRUE(res.status.ok());
  ASSERT_EQ(res.data.size(), 512u);
  EXPECT_TRUE(std::equal(res.data.begin(), res.data.end(), mem.begin() + 100));
}

TEST_F(FabricFixture, WriteLatencyIsTensOfMicroseconds) {
  // The paper's headline claim: PM access incurs only 10s of
  // microseconds, vs milliseconds for the storage stack.
  std::vector<std::byte> mem(8192);
  Endpoint& dev = MakeDevice(mem);
  Endpoint& host = fabric.CreateEndpoint("host");

  SimTime done{};
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    (void)co_await host.Write(self, dev.id(), 0x1000, MakePattern(4096));
    done = self.sim().Now();
  });
  sim.Run();
  EXPECT_GT(done.ns, Microseconds(10).ns);
  EXPECT_LT(done.ns, Microseconds(100).ns);
}

TEST_F(FabricFixture, LargerWritesTakeLonger) {
  std::vector<std::byte> mem(1 << 20);
  Endpoint& dev = MakeDevice(mem);
  Endpoint& host = fabric.CreateEndpoint("host");

  SimTime t_small{}, t_large{};
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    const SimTime t0 = self.sim().Now();
    (void)co_await host.Write(self, dev.id(), 0x1000, MakePattern(512));
    t_small = self.sim().Now();
    (void)co_await host.Write(self, dev.id(), 0x1000, MakePattern(512 * 1024));
    t_large = self.sim().Now();
    (void)t0;
  });
  sim.Run();
  const auto small_cost = t_small.ns;
  const auto large_cost = t_large.ns - t_small.ns;
  EXPECT_GT(large_cost, small_cost * 10);
}

// --------------------------------------------------- translation & ACLs

TEST_F(FabricFixture, OutOfWindowAccessRejected) {
  std::vector<std::byte> mem(1024);
  Endpoint& dev = MakeDevice(mem);
  Endpoint& host = fabric.CreateEndpoint("host");

  Status st;
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    // Crosses the end of the window.
    st = co_await host.Write(self, dev.id(), 0x1000 + 900, MakePattern(400));
  });
  sim.Run();
  EXPECT_EQ(st.code(), ErrorCode::kOutOfRange);
}

TEST_F(FabricFixture, UnmappedAddressRejected) {
  std::vector<std::byte> mem(1024);
  Endpoint& dev = MakeDevice(mem);
  Endpoint& host = fabric.CreateEndpoint("host");

  Status st;
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    st = co_await host.Write(self, dev.id(), 0x9000, MakePattern(16));
  });
  sim.Run();
  EXPECT_EQ(st.code(), ErrorCode::kOutOfRange);
}

TEST_F(FabricFixture, AccessControlEnforcedPerInitiator) {
  // The PMM "specifies which CPUs have access to a specific range" —
  // a host outside the ACL must be rejected.
  std::vector<std::byte> mem(1024);
  Endpoint& allowed = fabric.CreateEndpoint("allowed-host");
  Endpoint& dev = MakeDevice(mem, {allowed.id()});
  Endpoint& intruder = fabric.CreateEndpoint("intruder");

  Status st_allowed, st_intruder;
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    st_allowed = co_await allowed.Write(self, dev.id(), 0x1000, MakePattern(64));
    st_intruder =
        co_await intruder.Write(self, dev.id(), 0x1000, MakePattern(64));
  });
  sim.Run();
  EXPECT_TRUE(st_allowed.ok());
  EXPECT_EQ(st_intruder.code(), ErrorCode::kPermissionDenied);
}

TEST_F(FabricFixture, ReadOnlyWindowRejectsWrites) {
  std::vector<std::byte> mem(1024);
  Endpoint& dev = fabric.CreateEndpoint("device");
  AttWindow w;
  w.nva_base = 0x1000;
  w.length = mem.size();
  w.memory = mem.data();
  w.writable = false;
  ASSERT_TRUE(dev.MapWindow(std::move(w)).ok());
  Endpoint& host = fabric.CreateEndpoint("host");

  Status wr;
  RdmaResult rd;
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    wr = co_await host.Write(self, dev.id(), 0x1000, MakePattern(64));
    rd = co_await host.Read(self, dev.id(), 0x1000, 64);
  });
  sim.Run();
  EXPECT_EQ(wr.code(), ErrorCode::kPermissionDenied);
  EXPECT_TRUE(rd.status.ok());
}

TEST_F(FabricFixture, OverlappingWindowsRejected) {
  std::vector<std::byte> mem(4096);
  Endpoint& dev = fabric.CreateEndpoint("device");
  AttWindow a;
  a.nva_base = 0x1000;
  a.length = 1024;
  a.memory = mem.data();
  ASSERT_TRUE(dev.MapWindow(std::move(a)).ok());
  AttWindow b;
  b.nva_base = 0x1200;  // inside a
  b.length = 1024;
  b.memory = mem.data() + 1024;
  EXPECT_EQ(dev.MapWindow(std::move(b)).code(), ErrorCode::kInvalidArgument);
  AttWindow c;
  c.nva_base = 0x1000 + 1024;  // adjacent is fine
  c.length = 1024;
  c.memory = mem.data() + 1024;
  EXPECT_TRUE(dev.MapWindow(std::move(c)).ok());
}

TEST_F(FabricFixture, UnmapStopsAccess) {
  std::vector<std::byte> mem(1024);
  Endpoint& dev = MakeDevice(mem);
  Endpoint& host = fabric.CreateEndpoint("host");

  Status before, after;
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    before = co_await host.Write(self, dev.id(), 0x1000, MakePattern(64));
    EXPECT_TRUE(dev.UnmapWindow(0x1000).ok());
    after = co_await host.Write(self, dev.id(), 0x1000, MakePattern(64));
  });
  sim.Run();
  EXPECT_TRUE(before.ok());
  EXPECT_EQ(after.code(), ErrorCode::kOutOfRange);
}

// ------------------------------------------------------ faults & rails

TEST_F(FabricFixture, DownEndpointUnavailable) {
  std::vector<std::byte> mem(1024);
  Endpoint& dev = MakeDevice(mem);
  Endpoint& host = fabric.CreateEndpoint("host");
  dev.SetDown(true);

  Status st;
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    st = co_await host.Write(self, dev.id(), 0x1000, MakePattern(64));
  });
  sim.Run();
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
}

TEST_F(FabricFixture, SingleRailFailureSurvived) {
  std::vector<std::byte> mem(1024);
  Endpoint& dev = MakeDevice(mem);
  Endpoint& host = fabric.CreateEndpoint("host");
  fabric.SetRailDown(0, true);

  Status st;
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    st = co_await host.Write(self, dev.id(), 0x1000, MakePattern(64));
  });
  sim.Run();
  EXPECT_TRUE(st.ok()) << "dual-rail fabric must survive one rail failure";
}

TEST_F(FabricFixture, AllRailsDownFails) {
  std::vector<std::byte> mem(1024);
  Endpoint& dev = MakeDevice(mem);
  Endpoint& host = fabric.CreateEndpoint("host");
  fabric.SetRailDown(0, true);
  fabric.SetRailDown(1, true);

  Status st;
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    st = co_await host.Write(self, dev.id(), 0x1000, MakePattern(64));
  });
  sim.Run();
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
}

TEST_F(FabricFixture, CorruptionDetectedByCrc) {
  std::vector<std::byte> mem(1 << 16);
  Endpoint& dev = MakeDevice(mem);
  Endpoint& host = fabric.CreateEndpoint("host");
  fabric.SetCorruptionRate(0.05);

  int failures = 0, successes = 0;
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    for (int i = 0; i < 200; ++i) {
      Status st = co_await host.StartWrite(dev.id(), 0x1000, MakePattern(4096))
                      .Wait(self);
      if (st.ok()) {
        ++successes;
      } else {
        EXPECT_EQ(st.code(), ErrorCode::kDataLoss);
        ++failures;
      }
    }
  });
  sim.Run();
  EXPECT_GT(failures, 0);
  EXPECT_GT(successes, 0);
  EXPECT_EQ(fabric.crc_detections(), fabric.packets_corrupted())
      << "every corrupted packet must be caught by the NIC CRC";
}

TEST_F(FabricFixture, LinkOccupancySerializesConcurrentWrites) {
  std::vector<std::byte> mem(1 << 21);
  Endpoint& dev = MakeDevice(mem);
  Endpoint& a = fabric.CreateEndpoint("a");
  Endpoint& b = fabric.CreateEndpoint("b");

  // Two 1MB writes in parallel to the same device: wall time must be
  // close to 2x single-transfer wire time, not 1x.
  SimTime t_a{}, t_b{};
  sim.Spawn<LambdaProcess>("pa", [&](LambdaProcess& self) -> Task<void> {
    (void)co_await a.Write(self, dev.id(), 0x1000, MakePattern(1 << 20));
    t_a = self.sim().Now();
  });
  sim.Spawn<LambdaProcess>("pb", [&](LambdaProcess& self) -> Task<void> {
    (void)co_await b.Write(self, dev.id(), 0x1000 + (1 << 20),
                           MakePattern(1 << 20));
    t_b = self.sim().Now();
  });
  sim.Run();
  const double wire_one = sim::ToSecondsD(fabric.TransferTime(1 << 20));
  const double finish = sim::ToSecondsD(std::max(t_a, t_b) - SimTime{0});
  EXPECT_GT(finish, 1.8 * wire_one);
}

// -------------------------------------------------------------- messaging

TEST_F(FabricFixture, MessageDelivered) {
  Endpoint& a = fabric.CreateEndpoint("a");
  Endpoint& b = fabric.CreateEndpoint("b");

  std::optional<Endpoint::Packet> got;
  sim.Spawn<LambdaProcess>("recv", [&](LambdaProcess& self) -> Task<void> {
    got = co_await b.Incoming().Receive(self);
  });
  a.PostMessage(b.id(), 7, MakePattern(100));
  sim.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->from, a.id());
  EXPECT_EQ(got->kind, 7u);
  EXPECT_EQ(got->payload.size(), 100u);
}

TEST_F(FabricFixture, MessageToDownEndpointDropped) {
  Endpoint& a = fabric.CreateEndpoint("a");
  Endpoint& b = fabric.CreateEndpoint("b");
  b.SetDown(true);

  bool got = false;
  sim.Spawn<LambdaProcess>("recv", [&](LambdaProcess& self) -> Task<void> {
    auto m = co_await b.Incoming().ReceiveFor(self, Milliseconds(10));
    got = m.has_value();
  });
  a.PostMessage(b.id(), 1, {});
  sim.Run();
  EXPECT_FALSE(got);
}

// Torn writes: a packetized transfer that fails mid-flight must have
// landed a strict prefix of its packets — this is the hazard the PMM
// metadata protocol defends against.
TEST_F(FabricFixture, FailedTransferIsTornNotAtomic) {
  std::vector<std::byte> mem(1 << 16, std::byte{0});
  Endpoint& dev = MakeDevice(mem);
  Endpoint& host = fabric.CreateEndpoint("host");
  fabric.SetCorruptionRate(0.10);

  bool saw_torn = false;
  sim.Spawn<LambdaProcess>("h", [&](LambdaProcess& self) -> Task<void> {
    for (int attempt = 0; attempt < 100 && !saw_torn; ++attempt) {
      std::fill(mem.begin(), mem.end(), std::byte{0});
      auto data = std::vector<std::byte>(16384, std::byte{0xAA});
      Status st = co_await host.StartWrite(dev.id(), 0x1000, data).Wait(self);
      if (!st.ok()) {
        const auto written = static_cast<std::size_t>(
            std::count(mem.begin(), mem.end(), std::byte{0xAA}));
        if (written > 0 && written < data.size()) saw_torn = true;
      }
    }
  });
  sim.Run();
  EXPECT_TRUE(saw_torn) << "mid-transfer failures should leave torn writes";
}

}  // namespace
}  // namespace ods::net

// Quickstart: the persistent memory API in one sitting.
//
//   1. stand up a NonStop-style cluster with a mirrored pair of NPMUs
//      managed by a PMM process pair,
//   2. create a PM region and write to it synchronously ("when the call
//      returns the data is either persistent or the call will return in
//      error"),
//   3. lose power to the whole node,
//   4. restart and read the data back through a fresh handle.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <functional>

#include "nsk/cluster.h"
#include "pm/client.h"
#include "pm/manager.h"
#include "pm/npmu.h"
#include "sim/simulation.h"

using namespace ods;
using sim::Task;

namespace {

class App : public nsk::NskProcess {
 public:
  using Body = std::function<Task<void>(App&)>;
  App(nsk::Cluster& cluster, int cpu, std::string name, Body body)
      : NskProcess(cluster, cpu, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

}  // namespace

int main() {
  std::printf("== persistent memory quickstart ==\n\n");

  // A 4-CPU node with a ServerNet-class fabric.
  sim::Simulation sim(/*seed=*/2026);
  nsk::ClusterConfig cluster_cfg;
  cluster_cfg.num_cpus = 4;
  nsk::Cluster cluster(sim, cluster_cfg);

  // Two hardware NPMUs (mirrored pair) on the fabric.
  pm::Npmu npmu_a(cluster.fabric(), "npmu-a");
  pm::Npmu npmu_b(cluster.fabric(), "npmu-b");

  // The PMM process pair that manages them.
  auto& pmm_p = sim.AdoptStopped<pm::PmManager>(
      cluster, 0, "$PMM", "$PMM-P", pm::PmDevice(npmu_a), pm::PmDevice(npmu_b),
      "$PM1");
  auto& pmm_b = sim.AdoptStopped<pm::PmManager>(
      cluster, 1, "$PMM", "$PMM-B", pm::PmDevice(npmu_a), pm::PmDevice(npmu_b),
      "$PM1");
  pmm_p.SetPeer(&pmm_b);
  pmm_b.SetPeer(&pmm_p);
  pmm_p.Start();
  pmm_b.Start();

  // Phase 1: create a region and write.
  sim.Adopt<App>(cluster, 2, "writer", [&](App& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto region = co_await client.Create("greetings", 64 * 1024);
    if (!region.ok()) {
      std::printf("create failed: %s\n", region.status().ToString().c_str());
      co_return;
    }
    std::printf("created region '%s': %llu bytes at nva 0x%llx, "
                "mirrored on endpoints %u and %u\n",
                region->handle().name.c_str(),
                static_cast<unsigned long long>(region->size()),
                static_cast<unsigned long long>(region->handle().nva),
                region->handle().primary_endpoint,
                region->handle().mirror_endpoint);

    const char* message = "hello, durable world";
    std::vector<std::byte> bytes(
        reinterpret_cast<const std::byte*>(message),
        reinterpret_cast<const std::byte*>(message) + 21);
    const sim::SimTime t0 = self.sim().Now();
    Status st = co_await region->Write(0, std::move(bytes));
    std::printf("synchronous mirrored write: %s in %.1fus\n",
                st.ok() ? "durable" : st.ToString().c_str(),
                sim::ToMicrosD(self.sim().Now() - t0));
  });
  sim.RunFor(sim::Seconds(2));

  // Phase 2: power loss. Every process dies; NPMU address translation
  // tables (volatile NIC state) are wiped; NPMU *memory* survives.
  std::printf("\n-- power loss --\n\n");
  pmm_p.Kill();
  pmm_b.Kill();
  npmu_a.PowerFail();
  npmu_b.PowerFail();
  sim.RunFor(sim::Seconds(1));

  // Phase 3: restart the PMM pair; it recovers the region table from the
  // NPMUs' self-consistent metadata, reprograms the ATTs, and serves.
  pmm_p.Restart();
  pmm_b.Restart();
  sim.RunFor(sim::Seconds(2));

  sim.Adopt<App>(cluster, 3, "reader", [&](App& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto region = co_await client.Open("greetings");
    if (!region.ok()) {
      std::printf("open failed: %s\n", region.status().ToString().c_str());
      co_return;
    }
    auto data = co_await region->Read(0, 21);
    if (!data.ok()) {
      std::printf("read failed: %s\n", data.status().ToString().c_str());
      co_return;
    }
    std::string text(reinterpret_cast<const char*>(data->data()),
                     data->size());
    std::printf("recovered after power loss: \"%s\"\n", text.c_str());
  });
  sim.Run();

  std::printf("\ndone.\n");
  return 0;
}

// Durable order queue (§2): "Streams of buy and sell orders arrive from
// brokerage systems and must be queued and matched to generate trades."
// Orders are durable the instant the enqueue returns (~two RDMA writes),
// so a crashed matcher process resumes exactly where the durable head
// says — no orders lost, none double-matched after the durable dequeue.
#include <cstdio>
#include <functional>

#include "common/serialize.h"
#include "nsk/cluster.h"
#include "pm/client.h"
#include "pm/manager.h"
#include "pm/npmu.h"
#include "pm/queue.h"
#include "sim/simulation.h"

using namespace ods;
using sim::Task;

namespace {

class App : public nsk::NskProcess {
 public:
  using Body = std::function<Task<void>(App&)>;
  App(nsk::Cluster& cluster, int cpu, std::string name, Body body)
      : NskProcess(cluster, cpu, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

std::vector<std::byte> MakeOrder(std::uint64_t id, char side,
                                 std::uint64_t qty) {
  Serializer s;
  s.PutU64(id);
  s.PutU8(static_cast<std::uint8_t>(side));
  s.PutU64(qty);
  return std::move(s).Take();
}

void PrintOrder(const std::vector<std::byte>& bytes, const char* prefix) {
  Deserializer d(bytes);
  std::uint64_t id = 0, qty = 0;
  std::uint8_t side = 0;
  d.GetU64(id);
  d.GetU8(side);
  d.GetU64(qty);
  std::printf("%s order %llu: %c %llu\n", prefix,
              static_cast<unsigned long long>(id), static_cast<char>(side),
              static_cast<unsigned long long>(qty));
}

}  // namespace

int main() {
  std::printf("== durable order queue ==\n\n");

  sim::Simulation sim(3117);
  nsk::ClusterConfig ccfg;
  ccfg.num_cpus = 4;
  nsk::Cluster cluster(sim, ccfg);
  pm::Npmu npmu_a(cluster.fabric(), "npmu-a");
  pm::Npmu npmu_b(cluster.fabric(), "npmu-b");
  auto& pmm_p = sim.AdoptStopped<pm::PmManager>(
      cluster, 0, "$PMM", "$PMM-P", pm::PmDevice(npmu_a), pm::PmDevice(npmu_b),
      "$PM1");
  auto& pmm_b = sim.AdoptStopped<pm::PmManager>(
      cluster, 1, "$PMM", "$PMM-B", pm::PmDevice(npmu_a), pm::PmDevice(npmu_b),
      "$PM1");
  pmm_p.SetPeer(&pmm_b);
  pmm_b.SetPeer(&pmm_p);
  pmm_p.Start();
  pmm_b.Start();

  // A brokerage feed enqueues orders; a matcher consumes two at a time.
  // The matcher crashes mid-stream; its replacement resumes at the
  // durable head.
  sim.Adopt<App>(cluster, 2, "feed", [&](App& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto region = co_await client.Create("orders", 64 * 1024);
    if (!region.ok()) co_return;
    pm::PmQueue q(std::move(*region));
    (void)co_await q.Format();
    const sim::SimTime t0 = self.sim().Now();
    for (std::uint64_t id = 1; id <= 8; ++id) {
      (void)co_await q.Enqueue(
          MakeOrder(id, id % 2 != 0 ? 'B' : 'S', id * 100));
    }
    std::printf("feed: 8 orders durable in %.0fus total\n",
                sim::ToMicrosD(self.sim().Now() - t0));
  });
  sim.RunFor(sim::Seconds(1));

  App* matcher1 = &sim.Adopt<App>(cluster, 3, "matcher-1",
                                  [&](App& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto region = co_await client.Open("orders");
    if (!region.ok()) co_return;
    pm::PmQueue q(std::move(*region));
    if (!(co_await q.Open()).ok()) co_return;
    std::printf("\nmatcher-1 starts matching...\n");
    for (int i = 0; i < 3; ++i) {
      auto order = co_await q.Dequeue();
      if (!order.ok()) break;
      PrintOrder(*order, "  matcher-1 matched");
    }
    // ...and then it crashes (kill below), mid-stream.
    co_await self.Sleep(sim::Seconds(3600));
  });
  sim.RunFor(sim::Seconds(1));
  std::printf("matcher-1 crashes!\n");
  matcher1->Kill();
  sim.RunFor(sim::Seconds(1));

  sim.Adopt<App>(cluster, 3, "matcher-2", [&](App& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto region = co_await client.Open("orders");
    if (!region.ok()) co_return;
    pm::PmQueue q(std::move(*region));
    if (!(co_await q.Open()).ok()) co_return;
    std::printf("\nmatcher-2 resumes at the durable head:\n");
    while (true) {
      auto order = co_await q.Dequeue();
      if (!order.ok()) break;
      PrintOrder(*order, "  matcher-2 matched");
    }
    std::printf("queue drained — every order matched exactly once.\n");
  });
  sim.Run();
  return 0;
}

// Telecom ODS scenario (§1): "ODS for telecommunication companies support
// the insertion of tens of thousands of call-data records per second;
// simultaneously provide data to billing, marketing and fraud detection
// applications".
//
// A switch-facing ingest process streams call-data records into the
// store in small transactions (each call must be durable when the switch
// is acknowledged — insert-heavy, response-time-critical). Concurrently a
// billing process reads committed CDRs and a fraud detector samples
// recent calls. Runs on the PM configuration.
#include <cstdio>
#include <functional>

#include "common/rng.h"
#include "db/txn_client.h"
#include "workload/rig.h"

using namespace ods;
using namespace ods::workload;
using sim::Task;

namespace {

constexpr std::uint32_t kCdrFile = 0;   // call-data records
constexpr std::uint32_t kBillFile = 1;  // billing rollups

struct Stats {
  std::uint64_t calls_ingested = 0;
  std::uint64_t calls_billed = 0;
  std::uint64_t frauds_flagged = 0;
  double ingest_p99_us = 0;
};

class App : public nsk::NskProcess {
 public:
  using Body = std::function<Task<void>(App&)>;
  App(nsk::Cluster& cluster, int cpu, std::string name, Body body)
      : NskProcess(cluster, cpu, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

std::vector<std::byte> MakeCdr(Rng& rng) {
  // caller, callee, duration, cell id, ... modelled as a 512B record.
  std::vector<std::byte> cdr(512);
  for (std::size_t i = 0; i < 16; ++i) {
    cdr[i] = static_cast<std::byte>(rng.Next());
  }
  return cdr;
}

}  // namespace

int main() {
  std::printf("== telecom call-data-record ODS ==\n\n");

  sim::Simulation sim(777);
  RigConfig cfg;
  cfg.num_cpus = 4;
  cfg.num_files = 2;
  cfg.partitions_per_file = 4;
  cfg.num_adps = 4;
  cfg.log_medium = tp::LogMedium::kPm;
  cfg.pm_device = PmDeviceKind::kNpmuPair;
  cfg.pm_log_region_bytes = 16ull << 20;
  Rig rig(sim, cfg);
  sim.RunFor(sim::Seconds(1));

  Stats stats;
  LatencyHistogram ingest_latency;
  constexpr int kCalls = 3000;

  // Switch-facing ingest: one transaction per call (RTC — the switch
  // waits for the durable ack before recycling the trunk record).
  sim.Adopt<App>(rig.cluster(), 0, "ingest", [&](App& self) -> Task<void> {
    db::TxnClient client(self, rig.catalog());
    Rng rng(self.sim().rng().Next());
    for (std::uint64_t call = 1; call <= kCalls; ++call) {
      const sim::SimTime t0 = self.sim().Now();
      auto txn = co_await client.Begin();
      if (!txn.ok()) continue;
      if (!(co_await client.Insert(*txn, kCdrFile, call, MakeCdr(rng))).ok()) {
        (void)co_await client.Abort(*txn);
        continue;
      }
      if ((co_await client.Commit(*txn)).ok()) {
        ++stats.calls_ingested;
        ingest_latency.Record(
            static_cast<std::uint64_t>((self.sim().Now() - t0).ns));
      }
    }
  });

  // Billing: batches of committed CDRs rolled into billing records.
  sim.Adopt<App>(rig.cluster(), 1, "billing", [&](App& self) -> Task<void> {
    db::TxnClient client(self, rig.catalog());
    std::uint64_t next_to_bill = 1;
    while (next_to_bill <= kCalls) {
      co_await self.Sleep(sim::Milliseconds(200));
      auto txn = co_await client.Begin();
      if (!txn.ok()) continue;
      int billed_this_round = 0;
      while (billed_this_round < 200 && next_to_bill <= kCalls) {
        auto cdr = co_await client.Read(*txn, kCdrFile, next_to_bill);
        if (!cdr.ok()) break;  // not ingested yet
        std::vector<std::byte> rollup(64, std::byte{0xB1});
        if (!(co_await client.Insert(*txn, kBillFile, next_to_bill,
                                     std::move(rollup)))
                 .ok()) {
          break;
        }
        ++next_to_bill;
        ++billed_this_round;
      }
      if ((co_await client.Commit(*txn)).ok()) {
        stats.calls_billed += static_cast<std::uint64_t>(billed_this_round);
      }
    }
  });

  // Fraud detection: samples recent calls, flags "suspicious" ones.
  sim.Adopt<App>(rig.cluster(), 2, "fraud", [&](App& self) -> Task<void> {
    db::TxnClient client(self, rig.catalog());
    Rng rng(4242);
    for (int round = 0; round < 50; ++round) {
      co_await self.Sleep(sim::Milliseconds(100));
      auto txn = co_await client.Begin();
      if (!txn.ok()) continue;
      for (int i = 0; i < 10; ++i) {
        const std::uint64_t call = 1 + rng.Below(kCalls);
        auto cdr = co_await client.Read(*txn, kCdrFile, call);
        if (cdr.ok() && (*cdr)[0] == std::byte{0}) ++stats.frauds_flagged;
      }
      (void)co_await client.Commit(*txn);
    }
  });

  sim.RunFor(sim::Seconds(120));
  stats.ingest_p99_us = static_cast<double>(ingest_latency.Percentile(0.99)) / 1e3;

  std::printf("calls ingested   : %llu (of %d)\n",
              static_cast<unsigned long long>(stats.calls_ingested), kCalls);
  std::printf("ingest latency   : mean %.0fus  p99 %.0fus (durable ack)\n",
              ingest_latency.mean() / 1e3, stats.ingest_p99_us);
  std::printf("calls billed     : %llu\n",
              static_cast<unsigned long long>(stats.calls_billed));
  std::printf("fraud samples hit: %llu\n",
              static_cast<unsigned long long>(stats.frauds_flagged));
  std::printf("\nEvery call was durable well under a millisecond without\n"
              "boxcarring — the insert-heavy RTC pattern PM is built for.\n");
  return 0;
}

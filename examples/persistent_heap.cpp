// Fine-grained persistence of pointer-rich data (§3.4): an exchange
// order book kept directly in persistent memory via PmHeap. Orders link
// to each other with region-relative pointers, updates flush
// incrementally, and after a crash a brand-new process maps the region
// and walks the book — no unmarshalling, no log replay.
#include <cstdio>
#include <functional>

#include "nsk/cluster.h"
#include "pm/client.h"
#include "pm/heap.h"
#include "pm/manager.h"
#include "pm/npmu.h"
#include "sim/simulation.h"

using namespace ods;
using sim::Task;

namespace {

struct Order {
  std::uint64_t id = 0;
  char side = '?';  // 'B'uy / 'S'ell
  std::uint64_t price = 0;
  std::uint64_t quantity = 0;
  pm::PmPtr<Order> next;
};
static_assert(std::is_trivially_copyable_v<Order>);

class App : public nsk::NskProcess {
 public:
  using Body = std::function<Task<void>(App&)>;
  App(nsk::Cluster& cluster, int cpu, std::string name, Body body)
      : NskProcess(cluster, cpu, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

}  // namespace

int main() {
  std::printf("== persistent order book ==\n\n");

  sim::Simulation sim(11);
  nsk::ClusterConfig ccfg;
  ccfg.num_cpus = 4;
  nsk::Cluster cluster(sim, ccfg);
  pm::Npmu npmu_a(cluster.fabric(), "npmu-a");
  pm::Npmu npmu_b(cluster.fabric(), "npmu-b");
  auto& pmm_p = sim.AdoptStopped<pm::PmManager>(
      cluster, 0, "$PMM", "$PMM-P", pm::PmDevice(npmu_a), pm::PmDevice(npmu_b),
      "$PM1");
  auto& pmm_b = sim.AdoptStopped<pm::PmManager>(
      cluster, 1, "$PMM", "$PMM-B", pm::PmDevice(npmu_a), pm::PmDevice(npmu_b),
      "$PM1");
  pmm_p.SetPeer(&pmm_b);
  pmm_b.SetPeer(&pmm_p);
  pmm_p.Start();
  pmm_b.Start();

  // Session 1: build the book and update it.
  sim.Adopt<App>(cluster, 2, "exchange", [&](App& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto region = co_await client.Create("orderbook", 1 << 20);
    if (!region.ok()) co_return;
    pm::PmHeap heap(std::move(*region));
    (void)co_await heap.Format();

    pm::PmPtr<Order> head;
    for (std::uint64_t i = 1; i <= 8; ++i) {
      auto node = heap.New<Order>();
      if (!node.ok()) co_return;
      Order* o = heap.Resolve(*node);
      o->id = i;
      o->side = (i % 2 != 0) ? 'B' : 'S';
      o->price = 100 + i;
      o->quantity = 10 * i;
      o->next = head;
      head = *node;
      heap.Dirty(*node);
    }
    heap.SetRoot(head.offset);
    Status st = co_await heap.FlushDirty();
    std::printf("built 8-order book, flushed %llu bytes: %s\n",
                static_cast<unsigned long long>(heap.bytes_flushed()),
                st.ToString().c_str());

    // A partial fill touches one node: incremental flush moves only it.
    Order* top = heap.Resolve(head);
    top->quantity -= 5;
    heap.Dirty(head);
    const std::uint64_t before = heap.bytes_flushed();
    (void)co_await heap.FlushDirty();
    std::printf("partial fill of order %llu: flushed only %llu bytes\n",
                static_cast<unsigned long long>(top->id),
                static_cast<unsigned long long>(heap.bytes_flushed() - before));
  });
  sim.RunFor(sim::Seconds(2));

  // Crash: the exchange process dies (its address space is gone).
  std::printf("\n-- exchange process crashes --\n\n");

  // Session 2: a recovery process maps the region and walks the book.
  sim.Adopt<App>(cluster, 3, "recovery", [&](App& self) -> Task<void> {
    pm::PmClient client(self, "$PMM");
    auto region = co_await client.Open("orderbook");
    if (!region.ok()) co_return;
    pm::PmHeap heap(std::move(*region));
    const sim::SimTime t0 = self.sim().Now();
    Status st = co_await heap.Load();
    if (!st.ok()) {
      std::printf("load failed: %s\n", st.ToString().c_str());
      co_return;
    }
    std::printf("book recovered in %.1fus (bulk read + pointer fixing):\n",
                sim::ToMicrosD(self.sim().Now() - t0));
    for (pm::PmPtr<Order> cur{heap.root()}; cur;
         cur = heap.Resolve(cur)->next) {
      const Order* o = heap.Resolve(cur);
      std::printf("  order %llu: %c %llu @ %llu\n",
                  static_cast<unsigned long long>(o->id), o->side,
                  static_cast<unsigned long long>(o->quantity),
                  static_cast<unsigned long long>(o->price));
    }
  });
  sim.Run();
  return 0;
}

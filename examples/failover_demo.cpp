// Availability walkthrough: watch process pairs absorb failures while an
// application keeps committing. Narrates §1.3/§4: checkpointing, fault
// detection, takeover "in a second or less", and no committed-data loss.
#include <cstdio>
#include <functional>

#include "db/txn_client.h"
#include "workload/rig.h"

using namespace ods;
using namespace ods::workload;
using sim::Task;

namespace {

class App : public nsk::NskProcess {
 public:
  using Body = std::function<Task<void>(App&)>;
  App(nsk::Cluster& cluster, int cpu, std::string name, Body body)
      : NskProcess(cluster, cpu, std::move(name)), body_(std::move(body)) {}

 protected:
  Task<void> Main() override { return body_(*this); }

 private:
  Body body_;
};

}  // namespace

int main() {
  std::printf("== process-pair failover demo ==\n\n");

  sim::Simulation sim(404);
  RigConfig cfg;
  cfg.num_files = 2;
  cfg.partitions_per_file = 2;
  cfg.num_adps = 2;
  cfg.log_medium = tp::LogMedium::kPm;
  cfg.pm_device = PmDeviceKind::kNpmuPair;
  Rig rig(sim, cfg);
  sim.RunFor(sim::Seconds(1));

  sim.Adopt<App>(rig.cluster(), 2, "app", [&](App& self) -> Task<void> {
    db::TxnClient client(self, rig.catalog());
    std::uint64_t key = 0;

    std::uint64_t txn_no = 0;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> committed;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> committed_this_txn;
    auto commit_one = [&](const char* label) -> Task<void> {
      const sim::SimTime t0 = self.sim().Now();
      while (true) {
        committed_this_txn.clear();
        auto txn = co_await client.Begin();
        if (!txn.ok()) continue;
        // Spread the writes over every file so all partitions (and hence
        // all audit trails) participate in the commit.
        bool inserted = true;
        for (std::uint32_t f = 0;
             f < static_cast<std::uint32_t>(rig.catalog().num_files()) &&
             inserted;
             ++f) {
          for (int i = 0; i < 2; ++i) {
            inserted = (co_await client.Insert(
                            *txn, f, ++key,
                            std::vector<std::byte>(128, std::byte{1})))
                           .ok();
            if (inserted) committed_this_txn.emplace_back(f, key);
            if (!inserted) break;
          }
        }
        if (!inserted) {
          (void)co_await client.Abort(*txn);
          continue;
        }
        if ((co_await client.Commit(*txn)).ok()) {
          committed.insert(committed.end(), committed_this_txn.begin(),
                           committed_this_txn.end());
          break;
        }
      }
      ++txn_no;
      std::printf("  [%8.0fus] committed txn #%llu %s\n",
                  sim::ToMicrosD(self.sim().Now() - t0),
                  static_cast<unsigned long long>(txn_no), label);
    };

    std::printf("baseline:\n");
    co_await commit_one("(all primaries healthy)");
    co_await commit_one("(all primaries healthy)");

    std::printf("\nkilling the ADP (log writer) primary...\n");
    rig.KillAdpPrimary(0);
    co_await commit_one("(backup ADP promoted; audit intact)");

    std::printf("\nkilling the TMF (transaction monitor) primary...\n");
    rig.KillTmfPrimary();
    co_await commit_one("(backup TMF promoted; TCBs checkpointed)");

    std::printf("\nkilling the PMM (PM manager) primary...\n");
    rig.KillPmmPrimary();
    co_await commit_one("(data path never even noticed: RDMA is direct)");

    std::printf("\nverifying all %llu committed records...\n",
                static_cast<unsigned long long>(committed.size()));
    auto check = co_await client.Begin();
    if (check.ok()) {
      std::uint64_t readable = 0;
      for (const auto& [file, k] : committed) {
        auto v = co_await client.Read(*check, file, k);
        if (v.ok()) ++readable;
      }
      (void)co_await client.Commit(*check);
      std::printf("  %llu/%llu readable — %s.\n",
                  static_cast<unsigned long long>(readable),
                  static_cast<unsigned long long>(committed.size()),
                  readable == committed.size() ? "no committed data lost"
                                               : "DATA LOSS");
    }
  });
  sim.RunFor(sim::Seconds(60));

  std::printf("\nThe first commit after each kill absorbs the takeover "
              "window\n(fault detection + promotion), then service returns "
              "to normal.\n");
  return 0;
}

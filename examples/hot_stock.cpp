// The paper's motivating scenario (§2): a stock exchange ODS with the
// Hot Stock problem. Buy/sell orders for a hotly-traded security must be
// committed in order (regulatory constraint), so throughput per stock is
// inversely proportional to transaction response time. Boxcarring more
// trades per transaction raises throughput but stretches response time —
// unless the audit trail lives in persistent memory.
//
// Runs the full §4.3 benchmark at a small scale on both configurations
// and reports what the exchange operator cares about: trades/second per
// hot stock and order-to-durable latency.
#include <cstdio>

#include "workload/hot_stock.h"
#include "workload/rig.h"

using namespace ods;
using namespace ods::workload;

namespace {

HotStockResult Trade(bool pm, int drivers, int boxcar) {
  sim::Simulation sim(1987);
  RigConfig cfg;
  cfg.num_cpus = 4;
  cfg.num_files = 4;
  cfg.partitions_per_file = 4;
  cfg.num_adps = 4;
  if (pm) {
    cfg.log_medium = tp::LogMedium::kPm;
    cfg.pm_device = PmDeviceKind::kPmp;  // prototype PMP on a 5th CPU
    cfg.pm_log_region_bytes = 16ull << 20;
  }
  Rig rig(sim, cfg);
  sim.RunFor(sim::Seconds(1));

  HotStockConfig hs;
  hs.drivers = drivers;          // concurrently hot securities
  hs.inserts_per_txn = boxcar;   // trades boxcarred per transaction
  hs.records_per_driver = 2000;  // trades per security this session
  return RunHotStock(rig, hs);
}

}  // namespace

int main() {
  std::printf("== hot-stock exchange scenario ==\n\n");
  std::printf("2 hot securities, 2000 trades each, 4K per trade record.\n\n");
  std::printf("%-8s %-22s %16s %18s\n", "boxcar", "audit medium",
              "trades/sec", "order->durable");
  for (int boxcar : {2, 8, 32}) {
    for (bool pm : {false, true}) {
      const auto r = Trade(pm, /*drivers=*/2, boxcar);
      std::printf("%-8d %-22s %16.0f %15.1fms\n", boxcar,
                  pm ? "persistent memory" : "audit disks", r.Throughput(),
                  r.MeanResponseUs() / 1000.0 /
                      static_cast<double>(1));
    }
  }
  std::printf(
      "\nThe disk exchange must boxcar aggressively to keep up — and every\n"
      "boxcarred trade waits longer for its confirmation. With PM the\n"
      "trade rate is already at its ceiling at small boxcars: \"applications\n"
      "do not need to artificially combine operations in order to maintain\n"
      "throughput\" (§4.5).\n");
  return 0;
}
